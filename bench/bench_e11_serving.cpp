// Experiment E11 — inference serving under latency SLOs: the dynamic-
// batching engine (src/serve) driven open-loop through a seeded load sweep,
// pinned against the hpcsim serving estimator.
//
// Tables:
//   (a) calibration: measured full-batch service time of the serving model
//       and the capacity it implies (workers * max_batch / service);
//   (b) MEASURED load sweep: offered load as a fraction of modeled
//       capacity, achieved goodput, p50/p95/p99 latency of completed
//       requests, and the shed fraction.  The saturation knee — where
//       goodput stops tracking offered load — is marked;
//   (c) bursty (MMPP) traffic at the same mean rate as a mid-sweep Poisson
//       point: burstiness inflates tail latency and sheds at a mean rate
//       the server handles easily when arrivals are smooth;
//   (d) pin: modeled capacity vs the goodput measured past saturation
//       (the estimator is calibrated from (a), so this closes the loop
//       between perfmodel::estimate_serving and the real engine).
//
// Requests carry a latency SLO (deadline); once the admission controller's
// service estimate warms up, hopeless requests are shed on arrival, which
// is what keeps the completed-request tail bounded past the knee.
//
// `--continuous` switches the engine to the continuous scheduler
// (BatchPolicy::continuous, with the cold-start calibration probe) and pins
// the sweep against estimate_serving_continuous instead — run both modes to
// see the fill-window cut at low load and the shared capacity at the knee.
//
// `--json=PATH` (default BENCH_e11.json) emits the machine-readable report;
// the report is a generated artifact — CI emits and uploads it per commit
// (`--smoke` shrinks durations for that job); it is not checked in.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench/args.hpp"
#include "hpcsim/machine.hpp"
#include "hpcsim/perfmodel.hpp"
#include "nn/model.hpp"
#include "runtime/rng.hpp"
#include "serve/engine.hpp"

namespace {

using namespace candle;
using Clock = std::chrono::steady_clock;

constexpr double kSloSeconds = 50e-3;  // per-request latency budget

Model serving_model(std::uint64_t seed) {
  Model m;
  m.add(make_dense(2048)).add(make_relu());
  m.add(make_dense(1024)).add(make_relu());
  m.add(make_dense(64));
  m.build({1024}, seed);
  return m;
}

std::vector<float> sample_input(Index numel, std::uint64_t seed) {
  Pcg32 rng(seed);
  std::vector<float> v(static_cast<std::size_t>(numel));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

/// Median wall time of one full-batch infer() measured at deployment
/// concurrency — `workers` threads running infer simultaneously, exactly as
/// the engine will.  A single-stream measurement would overstate capacity:
/// concurrent workers contend for the kernel thread pool, and the per-batch
/// service time under contention is what the admission controller and the
/// capacity model actually see.  The serving counterpart of calibrate_host:
/// measure once, project the sweep.
double measure_batch_service_s(const Model& m, Index max_batch, int reps,
                               Index workers) {
  Tensor batch({max_batch, 1024});
  Pcg32 rng(7);
  for (Index i = 0; i < batch.numel(); ++i) {
    batch[i] = static_cast<float>(rng.normal());
  }
  std::vector<std::vector<double>> per_thread(
      static_cast<std::size_t>(workers));
  std::vector<std::thread> threads;
  for (Index w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      for (int r = 0; r < reps + 1; ++r) {  // first rep warms pools/arenas
        const auto t0 = Clock::now();
        const Tensor y = m.infer(batch);
        const auto t1 = Clock::now();
        if (r > 0) {
          per_thread[static_cast<std::size_t>(w)].push_back(
              std::chrono::duration<double>(t1 - t0).count());
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  std::vector<double> times;
  for (const auto& v : per_thread) times.insert(times.end(), v.begin(), v.end());
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

struct SweepRow {
  double frac = 0.0;
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double shed_fraction = 0.0;
  double modeled_mean_ms = 0.0;
  double modeled_shed_fraction = 0.0;
  bool bursty = false;
};

/// Replay one arrival trace open-loop against a fresh engine: submissions
/// are paced by the trace clock regardless of how the server is doing (the
/// load does not politely back off when the server saturates).
SweepRow replay(const Model& m, const serve::ArrivalTrace& trace,
                const std::vector<float>& input, Index workers,
                const serve::BatchPolicy& policy) {
  serve::EngineOptions opt;
  opt.workers = workers;
  opt.batch = policy;
  // Continuous mode prices deadlines from slot availability; seed the EWMA
  // so the very first window already sheds hopeless requests.
  opt.calibration_probe = policy.continuous;
  serve::Engine engine(m, opt);

  std::vector<std::future<serve::Response>> futures;
  futures.reserve(trace.at_s.size());
  const auto start = Clock::now();
  for (std::size_t i = 0; i < trace.at_s.size(); ++i) {
    const auto due =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(trace.at_s[i]));
    // Sleep-based pacing: OS wakeup overshoot (tens of us) turns dense
    // stretches into small catch-up bursts, which preserves the offered
    // rate.  Spin-waiting instead would burn a core the calibration did
    // not account for and depress the measured capacity.
    if (due > Clock::now()) std::this_thread::sleep_until(due);
    serve::Request req;
    req.id = i;
    req.input = input;
    req.deadline_s = kSloSeconds;
    futures.push_back(engine.submit(std::move(req)));
  }
  engine.drain();
  const serve::EngineStats s = engine.stats();

  SweepRow row;
  row.offered_rps = trace.offered_rps();
  row.achieved_rps =
      static_cast<double>(s.completed) / trace.duration_s;
  row.p50_ms = s.latency.quantile(0.50) * 1e3;
  row.p95_ms = s.latency.quantile(0.95) * 1e3;
  row.p99_ms = s.latency.quantile(0.99) * 1e3;
  row.shed_fraction = s.submitted > 0
                          ? static_cast<double>(s.shed_total()) /
                                static_cast<double>(s.submitted)
                          : 0.0;
  return row;
}

int run(double duration_s, const std::vector<double>& fracs,
        const std::string& json_path, bool continuous) {
  std::printf("=== E11: inference serving (%s batching vs model) ===\n\n",
              continuous ? "continuous" : "dynamic");

  const Model m = serving_model(17);
  serve::BatchPolicy policy;
  policy.max_batch = 32;
  policy.max_wait_s = 2e-3;
  policy.queue_capacity = 256;
  policy.continuous = continuous;
  const Index workers = 2;

  const double service_s =
      measure_batch_service_s(m, policy.max_batch, 9, workers);
  hpcsim::ServingPlan plan;
  plan.workers = workers;
  plan.max_batch = policy.max_batch;
  plan.batch_timeout_s = policy.max_wait_s;
  plan.queue_capacity = policy.queue_capacity;
  plan.measured_batch_service_s = service_s;
  const hpcsim::NodeSpec node = hpcsim::summit_node();
  hpcsim::TrainingWorkload workload;  // unused: measured override active
  const double capacity_rps =
      hpcsim::estimate_serving(node, workload, plan, 0.0).capacity_rps;

  std::printf("(a) calibration\n");
  std::printf("    batch service (b=%d, median): %8.3f ms\n",
              static_cast<int>(policy.max_batch), service_s * 1e3);
  std::printf("    modeled capacity (%d workers): %8.1f req/s\n",
              static_cast<int>(workers), capacity_rps);
  std::printf("    request SLO: %.0f ms\n\n", kSloSeconds * 1e3);

  const std::vector<float> input = sample_input(1024, 3);

  std::printf("(b) MEASURED open-loop Poisson load sweep (%.2fs per point)\n",
              duration_s);
  std::printf("%8s %10s %10s %9s %9s %9s %7s %12s %9s\n", "load", "offered",
              "goodput", "p50 ms", "p95 ms", "p99 ms", "shed", "model ms",
              "mod.shed");
  std::vector<SweepRow> rows;
  bool knee_marked = false;
  for (double frac : fracs) {
    const double rate = capacity_rps * frac;
    const serve::ArrivalTrace trace =
        serve::poisson_trace(rate, duration_s, 1000 + rows.size());
    SweepRow row = replay(m, trace, input, workers, policy);
    row.frac = frac;
    if (continuous) {
      const auto est = hpcsim::estimate_serving_continuous(node, workload,
                                                           plan,
                                                           row.offered_rps);
      row.modeled_mean_ms = est.mean_latency_s * 1e3;
      row.modeled_shed_fraction = est.shed_fraction;
    } else {
      const auto est = hpcsim::estimate_serving(node, workload, plan,
                                                row.offered_rps);
      row.modeled_mean_ms = est.mean_latency_s * 1e3;
      row.modeled_shed_fraction = est.shed_fraction;
    }
    const bool knee =
        !knee_marked && row.achieved_rps < 0.95 * row.offered_rps;
    if (knee) knee_marked = true;
    std::printf("%7.2fx %10.1f %10.1f %9.2f %9.2f %9.2f %6.1f%% %12.2f %8.1f%%%s\n",
                row.frac, row.offered_rps, row.achieved_rps, row.p50_ms,
                row.p95_ms, row.p99_ms, row.shed_fraction * 100.0,
                row.modeled_mean_ms, row.modeled_shed_fraction * 100.0,
                knee ? "   <-- saturation knee" : "");
    rows.push_back(row);
  }

  // (c) bursty traffic at the mean rate of a comfortable mid-sweep point.
  std::printf("\n(c) bursty (MMPP) vs smooth arrivals at the same mean rate\n");
  serve::BurstyTraffic traffic;
  traffic.base_rps = 0.3 * capacity_rps;
  traffic.burst_rps = 1.8 * capacity_rps;
  traffic.mean_base_dwell_s = 0.25;
  traffic.mean_burst_dwell_s = 0.08;
  const serve::ArrivalTrace bursty =
      serve::mmpp_trace(traffic, duration_s, 2024);
  SweepRow brow = replay(m, bursty, input, workers, policy);
  brow.bursty = true;
  if (continuous) {
    const auto best = hpcsim::estimate_serving_continuous(node, workload, plan,
                                                          brow.offered_rps);
    brow.modeled_mean_ms = best.mean_latency_s * 1e3;
    brow.modeled_shed_fraction = best.shed_fraction;
  } else {
    const auto best = hpcsim::estimate_serving(node, workload, plan,
                                               brow.offered_rps);
    brow.modeled_mean_ms = best.mean_latency_s * 1e3;
    brow.modeled_shed_fraction = best.shed_fraction;
  }
  std::printf("    mean offered %.1f req/s (%.2fx capacity): "
              "p99 %.2f ms, shed %.1f%%\n",
              brow.offered_rps, brow.offered_rps / capacity_rps, brow.p99_ms,
              brow.shed_fraction * 100.0);
  rows.push_back(brow);

  // (d) pin: the estimator's capacity against goodput measured past the
  // knee.  Calibrated from (a), the two should agree to ~10%.
  double saturated_rps = 0.0;
  for (const SweepRow& r : rows) {
    if (!r.bursty && r.frac > 1.0) {
      saturated_rps = std::max(saturated_rps, r.achieved_rps);
    }
  }
  const double pin_ratio =
      saturated_rps > 0.0 ? saturated_rps / capacity_rps : 0.0;
  std::printf("\n(d) model pin: measured saturated goodput %.1f req/s vs "
              "modeled capacity %.1f req/s (ratio %.3f)\n",
              saturated_rps, capacity_rps, pin_ratio);

  std::ofstream json(json_path);
  json << "{\n  \"experiment\": \"e11_serving\",\n"
       << "  \"mode\": \"" << (continuous ? "continuous" : "coalescing")
       << "\",\n"
       << "  \"calibration\": {\"batch_service_s\": " << service_s
       << ", \"capacity_rps\": " << capacity_rps
       << ", \"workers\": " << workers
       << ", \"max_batch\": " << policy.max_batch
       << ", \"slo_s\": " << kSloSeconds << "},\n"
       << "  \"pin\": {\"measured_saturated_rps\": " << saturated_rps
       << ", \"modeled_capacity_rps\": " << capacity_rps
       << ", \"ratio\": " << pin_ratio << "},\n"
       << "  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& r = rows[i];
    if (i > 0) json << ",\n";
    json << "    {\"traffic\": \"" << (r.bursty ? "mmpp" : "poisson")
         << "\", \"offered_rps\": " << r.offered_rps
         << ", \"achieved_rps\": " << r.achieved_rps
         << ", \"p50_ms\": " << r.p50_ms << ", \"p95_ms\": " << r.p95_ms
         << ", \"p99_ms\": " << r.p99_ms
         << ", \"shed_fraction\": " << r.shed_fraction
         << ", \"modeled_mean_ms\": " << r.modeled_mean_ms
         << ", \"modeled_shed_fraction\": " << r.modeled_shed_fraction
         << "}";
  }
  json << "\n  ]\n}\n";
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  candle::bench::Args args;
  args.flag("smoke").flag("continuous").option("json", "BENCH_e11.json");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "bench_e11_serving: %s\n", args.error().c_str());
    return 2;
  }
  const bool smoke = args.has("smoke");
  const double duration_s = smoke ? 0.3 : 1.2;
  const std::vector<double> fracs =
      smoke ? std::vector<double>{0.5, 1.3}
            : std::vector<double>{0.2, 0.4, 0.6, 0.8, 0.9, 1.1, 1.3};
  return run(duration_s, fracs, args.get("json"), args.has("continuous"));
}

// Experiment E5 — claim C5: "power efficient DNNs require high-bandwidth
// memory be physically close to arithmetic units to reduce costs of data
// motion".
//
// Tables:
//   (a) time + energy of one training step with the working set pinned to
//       each memory tier, per node generation — the HBM-vs-DDR-vs-NVRAM
//       penalty;
//   (b) the per-step energy budget decomposition (flops vs near-memory vs
//       network) showing data motion dominating at low precision;
//   (c) pJ/byte ladder across tiers (the numbers architects design to).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/kernels.hpp"
#include "hpcsim/perfmodel.hpp"

namespace {

using namespace candle;

void print_tables() {
  std::printf("=== E5: data-motion cost / memory placement "
              "(claim C5: HBM close to ALUs) ===\n\n");

  // One training step's kernel work for the CANDLE-scale net.  Batch 16 at
  // fp16 is the regime the paper worries about: fast arithmetic with low
  // reuse, so the memory system binds and tier placement is visible.
  const double batch = 16.0;
  const double flops = 3.0 * 2e9 * batch;
  const double bytes = (5e7 * 4.0 * 3.0) + (4e5 * batch * 2.0);

  std::printf("(a) one fp16 training step (batch 16, intensity %.0f f/B) "
              "with the working set in each tier\n",
              flops / bytes);
  std::printf("%-12s %-8s %12s %12s %12s %14s\n", "node", "tier",
              "time (ms)", "mem (ms)", "energy (J)", "vs nearest");
  for (const auto& node : hpcsim::all_node_presets()) {
    double base_time = 0.0;
    for (std::size_t t = 0; t < node.tiers.size(); ++t) {
      const auto est = hpcsim::roofline(node, flops, bytes, Precision::FP16, t);
      if (t == 0) base_time = est.time_s;
      std::printf("%-12s %-8s %12.2f %12.2f %12.2f %13.1fx\n",
                  node.name.c_str(), node.tiers[t].name.c_str(),
                  est.time_s * 1e3, est.memory_s * 1e3, est.energy_j,
                  est.time_s / base_time);
    }
  }

  std::printf("\n(b) per-SAMPLE energy budget on the future node at fp16, "
              "64 data replicas: batch sweep\n");
  std::printf("%8s %14s %14s %14s %14s\n", "batch", "compute (mJ)",
              "memory (mJ)", "network (mJ)", "motion share");
  const auto node = hpcsim::future_node();
  const auto fabric = hpcsim::fat_tree_fabric();
  hpcsim::TrainingWorkload w;
  w.name = "candle-scale";
  w.flops_per_sample = 2e9;
  w.parameters = 5e7;
  w.bytes_per_sample = 6e4;
  w.activation_bytes_per_sample = 4e5;
  for (const double b : {1.0, 16.0, 256.0, 4096.0}) {
    const double step_flops = 3.0 * w.flops_per_sample * b;
    const double compute_j =
        step_flops * node.pj_per_flop(Precision::FP16) * 1e-12;
    const double mem_bytes = w.parameters * 4.0 * 3.0 +
                             w.activation_bytes_per_sample * b * 2.0 +
                             w.bytes_per_sample * b;
    const double memory_j = mem_bytes * node.nearest().pj_per_byte * 1e-12;
    const double wire = hpcsim::allreduce_bytes_on_wire(
        hpcsim::AllReduceAlgo::Ring, 64, w.parameters * 4.0);
    const double network_j = fabric.transfer_energy_j(wire);
    const double total = compute_j + memory_j + network_j;
    std::printf("%8.0f %14.3f %14.3f %14.3f %13.0f%%\n", b,
                1e3 * compute_j / b, 1e3 * memory_j / b, 1e3 * network_j / b,
                100.0 * (memory_j + network_j) / total);
  }
  std::printf("(weight re-reads and the batch-independent gradient "
              "all-reduce amortize over the batch: small local batches — "
              "exactly what strong scaling forces — are data-motion "
              "dominated)\n");

  std::printf("\n(c) pJ/byte ladder (why locality == power)\n");
  std::printf("%-12s", "node");
  std::printf(" %10s %10s %10s %10s\n", "tier0", "tier1", "tier2", "tier3");
  for (const auto& n : hpcsim::all_node_presets()) {
    std::printf("%-12s", n.name.c_str());
    for (std::size_t t = 0; t < 4; ++t) {
      if (t < n.tiers.size()) {
        std::printf(" %7.0f pJ", n.tiers[t].pj_per_byte);
      } else {
        std::printf(" %10s", "-");
      }
    }
    std::printf("\n");
  }
  std::printf("\nexpected shape: every step farther from the ALUs costs "
              "multiples in both time and energy; as formats narrow, "
              "compute energy shrinks and the budget tips to data motion — "
              "the paper's HBM-adjacency argument\n\n");
}

// Timed: measured cache-blocking effect — the executable analogue of tier
// locality (in-cache vs streaming GEMM panels).
void BM_GemmWorkingSet(benchmark::State& state) {
  const Index k = state.range(0);  // growing K pushes B out of cache
  const Index m = 64, n = 64;
  Tensor a({m, k}), b({k, n}), c({m, n});
  for (auto _ : state) {
    gemm(Op::None, Op::None, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
         c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * m * n * static_cast<double>(k) *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

BENCHMARK(BM_GemmWorkingSet)
    ->Arg(256)
    ->Arg(4096)
    ->Arg(65536)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Kernel micro-benchmarks: calibrate the machine model and ablate the GEMM
// tiers (naive vs blocked vs blocked+parallel — DESIGN.md ✦), the precision
// emulation overhead, conv lowering, and the executable ring all-reduce.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/args.hpp"
#include "core/kernels.hpp"
#include "parallel/collectives.hpp"
#include "runtime/rng.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace candle;

void fill_random(Tensor& t, std::uint64_t seed) {
  Pcg32 rng(seed);
  for (float& v : t.flat()) v = static_cast<float>(rng.normal());
}

// ---- GEMM tier ablation -----------------------------------------------------

template <typename Kernel>
void gemm_bench(benchmark::State& state, Kernel kernel) {
  const Index n = state.range(0);
  Tensor a({n, n}), b({n, n}), c({n, n});
  fill_random(a, 1);
  fill_random(b, 2);
  for (auto _ : state) {
    kernel(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
           c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

void BM_GemmNaive(benchmark::State& state) { gemm_bench(state, gemm_naive); }
void BM_GemmBlocked(benchmark::State& state) { gemm_bench(state, gemm_serial); }
void BM_GemmParallel(benchmark::State& state) { gemm_bench(state, gemm); }

BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GemmParallel)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

// ---- precision emulation overhead ---------------------------------------------

void BM_GemmEmulated(benchmark::State& state) {
  const Index n = 256;
  const auto prec = static_cast<Precision>(state.range(0));
  Tensor a({n, n}), b({n, n}), c({n, n});
  fill_random(a, 3);
  fill_random(b, 4);
  for (auto _ : state) {
    gemm_emulated(prec, Op::None, Op::None, n, n, n, 1.0f, a.data(), n,
                  b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(precision_name(prec));
}

BENCHMARK(BM_GemmEmulated)
    ->Arg(static_cast<int>(Precision::FP32))
    ->Arg(static_cast<int>(Precision::BF16))
    ->Arg(static_cast<int>(Precision::FP16))
    ->Arg(static_cast<int>(Precision::INT8))
    ->Unit(benchmark::kMicrosecond);

// ---- GEMV (the memory-bound partner of claim C2) --------------------------------

void BM_Gemv(benchmark::State& state) {
  const Index n = state.range(0);
  Tensor a({n, n}), x({n}), y({n});
  fill_random(a, 5);
  fill_random(x, 6);
  for (auto _ : state) {
    gemv(Op::None, n, n, 1.0f, a.data(), n, x.data(), 0.0f, y.data());
    benchmark::DoNotOptimize(y.data());
  }
}

BENCHMARK(BM_Gemv)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

// ---- conv lowering ---------------------------------------------------------------

void BM_Im2col1D(benchmark::State& state) {
  const Index channels = 16, length = 1024, kernel = 9, stride = 1;
  Tensor x({channels, length});
  fill_random(x, 7);
  const Index lout = conv_out_length(length, kernel, stride);
  std::vector<float> cols(static_cast<std::size_t>(channels * kernel * lout));
  for (auto _ : state) {
    im2col_1d(x.data(), channels, length, kernel, stride, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}

BENCHMARK(BM_Im2col1D)->Unit(benchmark::kMicrosecond);

// ---- quantization ----------------------------------------------------------------

void BM_QuantizeInt8(benchmark::State& state) {
  const Index n = state.range(0);
  Tensor x({n});
  fill_random(x, 8);
  for (auto _ : state) {
    QuantizedTensor q = quantize_int8(x.flat());
    benchmark::DoNotOptimize(q.values.data());
  }
  state.counters["GB/s"] = benchmark::Counter(
      4e-9 * static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_QuantizeInt8)->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

// ---- executable ring all-reduce ----------------------------------------------------

void BM_RingAllReduce(benchmark::State& state) {
  const Index p = state.range(0);
  const Index n = 1 << 18;  // 1 MB per rank
  std::vector<std::vector<float>> bufs(static_cast<std::size_t>(p));
  Pcg32 rng(9);
  for (auto& b : bufs) {
    b.resize(static_cast<std::size_t>(n));
    for (auto& v : b) v = static_cast<float>(rng.normal());
  }
  for (auto _ : state) {
    candle::parallel::ShmCommunicator comm(p);
    std::vector<std::thread> threads;
    for (Index r = 0; r < p; ++r) {
      threads.emplace_back([&, r] {
        comm.allreduce_ring(r, bufs[static_cast<std::size_t>(r)]);
      });
    }
    for (auto& t : threads) t.join();
  }
  state.counters["bytes"] =
      static_cast<double>(n) * 4.0 * static_cast<double>(p);
}

BENCHMARK(BM_RingAllReduce)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// ---- --json mode: machine-readable GFLOP/s sweep ------------------------------
// `bench_kernels --json[=path]` bypasses the google-benchmark runner and
// emits a compact JSON report (default: BENCH_kernels.json) that CI checks
// in as the performance record for this machine.

// Median-of-reps wall time for `fn()`, self-calibrating the iteration count
// so each rep runs at least ~20 ms.
template <typename Fn>
double time_seconds(Fn&& fn) {
  fn();  // warm-up (also brings workspace arenas to their high-water mark)
  int iters = 1;
  for (;;) {
    Stopwatch sw;
    for (int i = 0; i < iters; ++i) fn();
    const double t = sw.seconds();
    if (t >= 0.02 || iters >= (1 << 20)) {
      double best = t / iters;
      for (int rep = 0; rep < 2; ++rep) {
        Stopwatch sw2;
        for (int i = 0; i < iters; ++i) fn();
        best = std::min(best, sw2.seconds() / iters);
      }
      return best;
    }
    iters *= 2;
  }
}

struct JsonWriter {
  std::ofstream out;
  bool first = true;

  explicit JsonWriter(const std::string& path) : out(path) {
    out << "{\n  \"benchmarks\": [\n";
  }
  void entry(const std::string& kernel, Index n, const std::string& precision,
             double gflops) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"kernel\": \"" << kernel << "\", \"n\": " << n
        << ", \"precision\": \"" << precision
        << "\", \"gflops\": " << gflops << "}";
  }
  void close() { out << "\n  ]\n}\n"; }
};

int run_json_sweep(const std::string& path) {
  JsonWriter w(path);
  const auto gflops_of = [](Index n, double secs) {
    return 2.0 * static_cast<double>(n) * n * n / secs * 1e-9;
  };

  // GEMM tiers over square shapes (naive capped: it is O(n^3) at ~1 GFLOP/s).
  const struct {
    const char* name;
    void (*fn)(Op, Op, Index, Index, Index, float, const float*, Index,
               const float*, Index, float, float*, Index);
    Index max_n;
  } tiers[] = {{"gemm_naive", gemm_naive, 256},
               {"gemm_serial", gemm_serial, 1024},
               {"gemm", gemm, 1024}};
  for (const auto& tier : tiers) {
    for (Index n : {64, 128, 256, 512, 1024}) {
      if (n > tier.max_n) continue;
      Tensor a({n, n}), b({n, n}), c({n, n});
      fill_random(a, 1);
      fill_random(b, 2);
      const double secs = time_seconds([&] {
        tier.fn(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, b.data(), n,
                0.0f, c.data(), n);
      });
      w.entry(tier.name, n, "fp32", gflops_of(n, secs));
      std::cerr << tier.name << " n=" << n << ": " << gflops_of(n, secs)
                << " GFLOP/s\n";
    }
  }

  // Precision-emulated GEMM (round-at-pack / int8 requant cost included).
  for (Precision prec : {Precision::FP32, Precision::BF16, Precision::FP16,
                         Precision::INT8}) {
    const Index n = 512;
    Tensor a({n, n}), b({n, n}), c({n, n});
    fill_random(a, 3);
    fill_random(b, 4);
    const double secs = time_seconds([&] {
      gemm_emulated(prec, Op::None, Op::None, n, n, n, 1.0f, a.data(), n,
                    b.data(), n, 0.0f, c.data(), n);
    });
    w.entry("gemm_emulated", n, precision_name(prec), gflops_of(n, secs));
  }

  // Fused epilogue vs unfused GEMM + separate bias/ReLU sweep.
  {
    const Index n = 512;
    Tensor a({n, n}), b({n, n}), c({n, n}), bias({n});
    fill_random(a, 5);
    fill_random(b, 6);
    fill_random(bias, 7);
    Epilogue ep;
    ep.bias = bias.data();
    ep.act = Epilogue::Act::ReLU;
    const double fused = time_seconds([&] {
      gemm_fused(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, b.data(), n,
                 0.0f, c.data(), n, ep);
    });
    const double unfused = time_seconds([&] {
      gemm(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
           c.data(), n);
      float* p = c.data();
      for (Index i = 0; i < n; ++i) {
        for (Index j = 0; j < n; ++j) {
          const float v = p[i * n + j] + bias[j];
          p[i * n + j] = v > 0.0f ? v : 0.0f;
        }
      }
    });
    w.entry("gemm_fused_bias_relu", n, "fp32", gflops_of(n, fused));
    w.entry("gemm_unfused_bias_relu", n, "fp32", gflops_of(n, unfused));
  }

  // GEMV (memory-bound partner): report effective GFLOP/s (2n^2 flops).
  for (Index n : {1024, 4096}) {
    Tensor a({n, n}), x({n}), y({n});
    fill_random(a, 8);
    fill_random(x, 9);
    const double secs = time_seconds([&] {
      gemv(Op::None, n, n, 1.0f, a.data(), n, x.data(), 0.0f, y.data());
    });
    w.entry("gemv", n, "fp32",
            2.0 * static_cast<double>(n) * n / secs * 1e-9);
  }

  w.close();
  std::cerr << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  candle::bench::Args args;
  args.soft_option("json", "BENCH_kernels.json");
  args.allow_unknown();  // leftover flags go to benchmark::Initialize
  if (!args.parse(argc, argv)) {
    std::cerr << "bench_kernels: " << args.error() << "\n";
    return 2;
  }
  if (args.has("json")) return run_json_sweep(args.get("json"));
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

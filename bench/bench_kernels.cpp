// Kernel micro-benchmarks: calibrate the machine model and ablate the GEMM
// tiers (naive vs blocked vs blocked+parallel — DESIGN.md ✦), the precision
// emulation overhead, conv lowering, and the executable ring all-reduce.
#include <benchmark/benchmark.h>

#include <thread>
#include <vector>

#include "core/kernels.hpp"
#include "parallel/collectives.hpp"
#include "runtime/rng.hpp"

namespace {

using namespace candle;

void fill_random(Tensor& t, std::uint64_t seed) {
  Pcg32 rng(seed);
  for (float& v : t.flat()) v = static_cast<float>(rng.normal());
}

// ---- GEMM tier ablation -----------------------------------------------------

template <typename Kernel>
void gemm_bench(benchmark::State& state, Kernel kernel) {
  const Index n = state.range(0);
  Tensor a({n, n}), b({n, n}), c({n, n});
  fill_random(a, 1);
  fill_random(b, 2);
  for (auto _ : state) {
    kernel(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
           c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["FLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * n * n *
          static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::OneK::kIs1000);
}

void BM_GemmNaive(benchmark::State& state) { gemm_bench(state, gemm_naive); }
void BM_GemmBlocked(benchmark::State& state) { gemm_bench(state, gemm_serial); }
void BM_GemmParallel(benchmark::State& state) { gemm_bench(state, gemm); }

BENCHMARK(BM_GemmNaive)->Arg(64)->Arg(128)->Arg(256)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GemmParallel)->Arg(64)->Arg(128)->Arg(256)->Arg(512)->Unit(benchmark::kMicrosecond);

// ---- precision emulation overhead ---------------------------------------------

void BM_GemmEmulated(benchmark::State& state) {
  const Index n = 256;
  const auto prec = static_cast<Precision>(state.range(0));
  Tensor a({n, n}), b({n, n}), c({n, n});
  fill_random(a, 3);
  fill_random(b, 4);
  for (auto _ : state) {
    gemm_emulated(prec, Op::None, Op::None, n, n, n, 1.0f, a.data(), n,
                  b.data(), n, 0.0f, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetLabel(precision_name(prec));
}

BENCHMARK(BM_GemmEmulated)
    ->Arg(static_cast<int>(Precision::FP32))
    ->Arg(static_cast<int>(Precision::BF16))
    ->Arg(static_cast<int>(Precision::FP16))
    ->Arg(static_cast<int>(Precision::INT8))
    ->Unit(benchmark::kMicrosecond);

// ---- GEMV (the memory-bound partner of claim C2) --------------------------------

void BM_Gemv(benchmark::State& state) {
  const Index n = state.range(0);
  Tensor a({n, n}), x({n}), y({n});
  fill_random(a, 5);
  fill_random(x, 6);
  for (auto _ : state) {
    gemv(Op::None, n, n, 1.0f, a.data(), n, x.data(), 0.0f, y.data());
    benchmark::DoNotOptimize(y.data());
  }
}

BENCHMARK(BM_Gemv)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMicrosecond);

// ---- conv lowering ---------------------------------------------------------------

void BM_Im2col1D(benchmark::State& state) {
  const Index channels = 16, length = 1024, kernel = 9, stride = 1;
  Tensor x({channels, length});
  fill_random(x, 7);
  const Index lout = conv_out_length(length, kernel, stride);
  std::vector<float> cols(static_cast<std::size_t>(channels * kernel * lout));
  for (auto _ : state) {
    im2col_1d(x.data(), channels, length, kernel, stride, cols.data());
    benchmark::DoNotOptimize(cols.data());
  }
}

BENCHMARK(BM_Im2col1D)->Unit(benchmark::kMicrosecond);

// ---- quantization ----------------------------------------------------------------

void BM_QuantizeInt8(benchmark::State& state) {
  const Index n = state.range(0);
  Tensor x({n});
  fill_random(x, 8);
  for (auto _ : state) {
    QuantizedTensor q = quantize_int8(x.flat());
    benchmark::DoNotOptimize(q.values.data());
  }
  state.counters["GB/s"] = benchmark::Counter(
      4e-9 * static_cast<double>(n) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_QuantizeInt8)->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMicrosecond);

// ---- executable ring all-reduce ----------------------------------------------------

void BM_RingAllReduce(benchmark::State& state) {
  const Index p = state.range(0);
  const Index n = 1 << 18;  // 1 MB per rank
  std::vector<std::vector<float>> bufs(static_cast<std::size_t>(p));
  Pcg32 rng(9);
  for (auto& b : bufs) {
    b.resize(static_cast<std::size_t>(n));
    for (auto& v : b) v = static_cast<float>(rng.normal());
  }
  for (auto _ : state) {
    candle::parallel::ShmCommunicator comm(p);
    std::vector<std::thread> threads;
    for (Index r = 0; r < p; ++r) {
      threads.emplace_back([&, r] {
        comm.allreduce_ring(r, bufs[static_cast<std::size_t>(r)]);
      });
    }
    for (auto& t : threads) t.join();
  }
  state.counters["bytes"] =
      static_cast<double>(n) * 4.0 * static_cast<double>(p);
}

BENCHMARK(BM_RingAllReduce)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

// Experiment E7 — claim C8: "Naive searches are outperformed by various
// intelligent searching strategies, including new approaches that use
// generative neural networks to manage the search space".
//
//   (a) Synthetic landscapes (fast, repeated over seeds): best-found vs
//       budget for grid / random / LHS / evolution / surrogate /
//       generative — medians over repeats.
//   (b) REAL trainings: the same strategies driving TrainObjective on the
//       drug-response workload (every trial actually trains a model).
//   (c) Multi-fidelity: ASHA vs full-fidelity random at equal *epoch*
//       budget, on real trainings.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "biodata/workloads.hpp"
#include "hpo/objectives.hpp"
#include "hpo/pbt.hpp"
#include "hpo/searchers.hpp"
#include "nn/metrics.hpp"

namespace {

using namespace candle;
using hpo::UnitConfig;

const std::vector<std::string> kStrategies = {"grid",      "random",
                                              "lhs",       "evolution",
                                              "surrogate", "generative"};

double best_after(hpo::Searcher& s, const hpo::Objective& f, Index budget) {
  for (Index i = 0; i < budget; ++i) {
    const UnitConfig c = s.suggest();
    s.observe(c, f(c));
  }
  return s.best().objective;
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

void print_tables() {
  std::printf("=== E7: intelligent vs naive hyperparameter search "
              "(claim C8) ===\n\n");
  const hpo::SearchSpace space = hpo::make_mlp_space();
  std::printf("search space: 6 parameters, %.2e+ distinct configurations "
              "(the paper's 'tens of thousands' and beyond)\n\n",
              space.cardinality(100));

  // (a) Synthetic landscapes, median best over 9 seeds, budgets 32/128.
  std::printf("(a) synthetic landscapes: median best objective over 9 "
              "seeds\n");
  for (const char* land : {"sphere", "valley", "rastrigin"}) {
    std::printf("  %-10s", land);
    std::printf(" %12s %12s\n", "budget 32", "budget 128");
    for (const std::string& strat : kStrategies) {
      std::vector<double> b32, b128;
      for (std::uint64_t seed = 0; seed < 9; ++seed) {
        hpo::Objective f;
        if (std::string(land) == "sphere") {
          f = hpo::make_sphere_objective(space, 900 + seed);
        } else if (std::string(land) == "valley") {
          f = hpo::make_embedded_valley_objective(space, 900 + seed);
        } else {
          f = hpo::make_rastrigin_objective(space, 900 + seed);
        }
        auto s32 = hpo::make_searcher(strat, space, 7000 + seed, 32);
        b32.push_back(best_after(*s32, f, 32));
        auto s128 = hpo::make_searcher(strat, space, 8000 + seed, 128);
        b128.push_back(best_after(*s128, f, 128));
      }
      std::printf("    %-10s %12.4f %12.4f\n", strat.c_str(), median(b32),
                  median(b128));
    }
  }

  // (b) Real trainings.
  std::printf("\n(b) real trainings (drug-response MLP, 32 trials x 5 "
              "epochs each)\n");
  biodata::DrugResponseConfig cfg;
  cfg.samples = 700;
  cfg.seed = 701;
  Dataset data = biodata::make_drug_response(cfg);
  auto [train, val] = split(data, 0.8, 702);
  Standardizer scaler = Standardizer::fit(train.x);
  scaler.apply(train.x);
  scaler.apply(val.x);
  hpo::TrainObjectiveOptions topts;
  topts.epochs = 5;
  topts.classification = false;
  topts.max_train = 256;
  topts.max_val = 128;
  std::printf("%-12s %16s\n", "strategy", "best val MSE");
  for (const std::string& strat : kStrategies) {
    hpo::TrainObjective objective(space, train, val, topts);
    auto searcher = hpo::make_searcher(strat, space, 31337, 32);
    const double best = best_after(
        *searcher, [&](const UnitConfig& c) { return objective(c); }, 32);
    std::printf("%-12s %16.4f\n", strat.c_str(), best);
  }

  // (c) ASHA vs full fidelity at equal epoch budget.  Full fidelity is 12
  // epochs; ASHA's rungs are 2 -> 6 -> 12, so a losing configuration costs
  // it 6x less than it costs the full-fidelity baseline.
  std::printf("\n(c) multi-fidelity: ASHA(random) vs full-fidelity random "
              "at equal epoch budget (12-epoch full trials)\n");
  const Index full_epochs = 12;
  const Index epoch_budget = 360;
  {
    hpo::TrainObjective objective(space, train, val, topts);
    hpo::RandomSearcher full(space, 41414);
    Index spent = 0;
    while (spent + full_epochs <= epoch_budget) {
      const UnitConfig c = full.suggest();
      full.observe(c, objective.evaluate(c, full_epochs));
      spent += full_epochs;
    }
    std::printf("%-22s best %.4f  (%lld trials, %lld epochs)\n",
                "random@full-fidelity", full.best().objective,
                static_cast<long long>(full.num_observed()),
                static_cast<long long>(spent));
  }
  {
    hpo::TrainObjective objective(space, train, val, topts);
    hpo::SuccessiveHalving asha(
        std::make_unique<hpo::RandomSearcher>(space, 41414), 4, full_epochs,
        3);
    Index spent = 0;
    while (spent < epoch_budget) {
      const auto task = asha.suggest();
      if (spent + task.budget > epoch_budget) break;
      asha.observe(task, objective.evaluate(task.config, task.budget));
      spent += task.budget;
    }
    std::printf("%-22s best %.4f  (%lld tasks, %lld epochs)\n",
                "asha(random)", asha.best().objective,
                static_cast<long long>(asha.num_observed()),
                static_cast<long long>(spent));
  }
  // (d) Population-based training: search DURING training.  Budget in
  // epochs: population x rounds x epochs_per_round = 8 x 5 x 2 = 80.
  {
    auto [ptrain, pval] = split(data, 0.75, 808);
    Standardizer pscale = Standardizer::fit(ptrain.x);
    pscale.apply(ptrain.x);
    pscale.apply(pval.x);
    hpo::PbtOptions popts;
    popts.population = 8;
    popts.rounds = 5;
    popts.epochs_per_round = 2;
    popts.seed = 809;
    MeanSquaredError mse;
    const hpo::PbtResult pbt = hpo::population_based_training(
        [&] {
          Model m;
          m.add(make_dense(48)).add(make_relu()).add(make_dense(1));
          m.build(ptrain.sample_shape(), 810);
          return m;
        },
        ptrain, pval, mse, popts);
    std::printf("\n(d) population-based training (8 members x 5 rounds x 2 "
                "epochs = 80 epochs)\n");
    std::printf("    best val MSE per round:");
    for (float v : pbt.best_loss_per_round) std::printf(" %.4f", v);
    std::printf("\n    final best lr %.2e after %lld exploit/explore "
                "events\n",
                static_cast<double>(pbt.best().lr),
                static_cast<long long>(pbt.total_exploits));
  }

  std::printf("\nexpected shape: structured strategies (surrogate, "
              "generative, evolution) find better configurations than grid/"
              "random at the same budget, most visibly on the structured "
              "valley landscape and on real trainings; ASHA evaluates many "
              "more configurations per epoch of compute; PBT improves "
              "monotonically by searching during training\n\n");
}

// Timed: one generative-searcher retraining round (the overhead the
// intelligent search pays per suggestion batch).
void BM_GenerativeSuggest(benchmark::State& state) {
  const hpo::SearchSpace space = hpo::make_mlp_space();
  hpo::GenerativeSearcher searcher(space, 55, 4, 0.25, 12, 8);
  const hpo::Objective f = hpo::make_sphere_objective(space, 56);
  for (int i = 0; i < 24; ++i) {
    const UnitConfig c = searcher.suggest();
    searcher.observe(c, f(c));
  }
  for (auto _ : state) {
    const UnitConfig c = searcher.suggest();
    benchmark::DoNotOptimize(c.data());
  }
}

BENCHMARK(BM_GenerativeSuggest)->Unit(benchmark::kMillisecond);

void BM_SurrogateSuggest(benchmark::State& state) {
  const hpo::SearchSpace space = hpo::make_mlp_space();
  hpo::SurrogateSearcher searcher(space, 57);
  const hpo::Objective f = hpo::make_sphere_objective(space, 58);
  for (int i = 0; i < 24; ++i) {
    const UnitConfig c = searcher.suggest();
    searcher.observe(c, f(c));
  }
  for (auto _ : state) {
    const UnitConfig c = searcher.suggest();
    benchmark::DoNotOptimize(c.data());
  }
}

BENCHMARK(BM_SurrogateSuggest)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

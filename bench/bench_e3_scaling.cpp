// Experiment E3 — claim C3: "DNNs in general do not have good strong
// scaling behavior".
//
//   (a) MEASURED: real synchronous data-parallel training on 1..8 virtual
//       nodes with genuine ring all-reduce — verifying that the numerics
//       are scale-invariant (same loss trajectory at every width).
//   (b) MODELED: strong vs weak scaling to 4096 nodes for a CANDLE-scale
//       workload, with the global-batch sweep showing where strong scaling
//       collapses and how weak scaling holds.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "biodata/workloads.hpp"
#include "hpcsim/perfmodel.hpp"
#include "nn/metrics.hpp"
#include "nn/norm.hpp"
#include "parallel/data_parallel.hpp"
#include "parallel/workload.hpp"

namespace {

using namespace candle;

Model small_model(Index features) {
  Model m;
  m.add(make_dense(64)).add(make_relu());
  m.add(make_dense(32)).add(make_relu());
  m.add(make_dense(1));
  m.build({features}, 3131);
  return m;
}

hpcsim::TrainingWorkload candle_scale_workload() {
  hpcsim::TrainingWorkload w;
  w.name = "candle-scale";
  w.flops_per_sample = 2e9;
  w.parameters = 5e7;
  w.bytes_per_sample = 6e4;
  w.activation_bytes_per_sample = 4e5;
  return w;
}

void print_tables() {
  std::printf("=== E3: strong vs weak scaling "
              "(claim C3: DNNs do not strong-scale well) ===\n\n");

  // (a) Executable: loss trajectory must be identical across replica
  // counts at fixed global batch (synchronous SGD invariance).
  biodata::DrugResponseConfig cfg;
  cfg.samples = 512;
  cfg.seed = 301;
  Dataset data = biodata::make_drug_response(cfg);
  std::printf("measured virtual-node data parallelism "
              "(fixed global batch 32, real ring all-reduce)\n");
  std::printf("%9s %14s %14s\n", "replicas", "epoch-3 loss", "wall (s)");
  for (Index replicas : {1, 2, 4, 8}) {
    parallel::DataParallelOptions opts;
    opts.replicas = replicas;
    opts.batch_per_replica = 32 / replicas;
    opts.epochs = 3;
    opts.seed = 302;
    const auto res = parallel::train_data_parallel(
        [&] { return small_model(cfg.features()); },
        [] { return make_sgd(0.05f); }, data, MeanSquaredError(), opts);
    std::printf("%9lld %14.5f %14.2f\n", static_cast<long long>(replicas),
                static_cast<double>(res.epoch_loss.back()),
                res.measured_seconds);
  }
  std::printf("(loss column must be ~constant: the decomposition changes "
              "the machine, not the mathematics)\n\n");

  // (b) Modeled scaling curves.
  const auto node = hpcsim::summit_node();
  const auto fabric = hpcsim::fat_tree_fabric();
  const auto w = candle_scale_workload();
  const std::vector<hpcsim::Index> counts = {1,   4,    16,   64,
                                             256, 1024, 4096};

  for (const hpcsim::Index global_batch : {1024, 4096, 16384}) {
    std::printf("modeled strong scaling, global batch %lld (%s, %s)\n",
                static_cast<long long>(global_batch), node.name.c_str(),
                "fat-tree");
    std::printf("%8s %12s %12s %12s %14s\n", "nodes", "step(ms)", "speedup",
                "efficiency", "comm fraction");
    for (const auto& pt :
         hpcsim::strong_scaling(node, fabric, w, global_batch, counts)) {
      std::printf("%8lld %12.2f %12.1f %12.3f %14.3f\n",
                  static_cast<long long>(pt.nodes), pt.step_s * 1e3,
                  pt.speedup, pt.efficiency, pt.comm_fraction);
    }
    std::printf("\n");
  }

  std::printf("modeled weak scaling (batch 256/node)\n");
  std::printf("%8s %12s %12s %14s\n", "nodes", "step(ms)", "efficiency",
              "comm fraction");
  for (const auto& pt :
       hpcsim::weak_scaling(node, fabric, w, 256, counts)) {
    std::printf("%8lld %12.2f %12.3f %14.3f\n",
                static_cast<long long>(pt.nodes), pt.step_s * 1e3,
                pt.efficiency, pt.comm_fraction);
  }
  // (c) Ablation: normalization choice under the shrinking per-replica
  // batches strong scaling forces.  BatchNorm statistics degrade with the
  // local batch; LayerNorm is batch-independent.
  std::printf("normalization ablation: test accuracy after training at a "
              "given LOCAL batch (tumor-type MLP)\n");
  std::printf("%12s %12s %12s\n", "local batch", "batchnorm", "layernorm");
  biodata::TumorTypeConfig tcfg;
  tcfg.samples = 400;
  tcfg.classes = 4;
  tcfg.profile_length = 64;
  tcfg.signal = 0.5f;
  tcfg.module_width = 6;
  tcfg.seed = 321;
  Dataset tumor = biodata::make_tumor_type_flat(tcfg);
  auto [ttrain, ttest] = split(tumor, 0.8, 322);
  for (Index local_batch : {32, 8, 2}) {
    double accs[2] = {0.0, 0.0};
    for (int which = 0; which < 2; ++which) {
      Model m;
      m.add(make_dense(32));
      if (which == 0) {
        m.add(make_batchnorm());
      } else {
        m.add(make_layernorm());
      }
      m.add(make_relu()).add(make_dense(tcfg.classes));
      m.build({tcfg.profile_length}, 323);
      SoftmaxCrossEntropy xent;
      Adam opt(1e-3f);
      FitOptions nfo;
      nfo.epochs = 8;
      nfo.batch_size = local_batch;
      nfo.seed = 324;
      fit(m, ttrain, nullptr, xent, opt, nfo);
      accs[which] = accuracy(m.predict(ttest.x), ttest.y);
    }
    std::printf("%12lld %12.3f %12.3f\n", static_cast<long long>(local_batch),
                accs[0], accs[1]);
  }

  std::printf("\nexpected shape: strong scaling efficiency collapses "
              "(smaller local batches starve the GEMMs while the gradient "
              "all-reduce is batch-independent); larger global batches push "
              "the collapse out; weak scaling holds far better — hence the "
              "paper's model/data/search-parallel combination; batch-"
              "statistics layers (batchnorm) add a quality penalty at the "
              "small local batches strong scaling forces\n\n");
}

// Timed: one measured data-parallel step at each replica count.
void BM_DataParallelStep(benchmark::State& state) {
  const Index replicas = state.range(0);
  biodata::DrugResponseConfig cfg;
  cfg.samples = 256;
  cfg.seed = 311;
  Dataset data = biodata::make_drug_response(cfg);
  for (auto _ : state) {
    parallel::DataParallelOptions opts;
    opts.replicas = replicas;
    opts.batch_per_replica = 32 / replicas;
    opts.epochs = 1;
    opts.seed = 312;
    const auto res = parallel::train_data_parallel(
        [&] { return small_model(cfg.features()); },
        [] { return make_sgd(0.05f); }, data, MeanSquaredError(), opts);
    benchmark::DoNotOptimize(res.steps);
  }
}

BENCHMARK(BM_DataParallelStep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

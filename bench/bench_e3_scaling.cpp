// Experiment E3 — claim C3: "DNNs in general do not have good strong
// scaling behavior".
//
//   (a) MEASURED: real synchronous data-parallel training on 1..8 virtual
//       nodes with genuine ring all-reduce — verifying that the numerics
//       are scale-invariant (same loss trajectory at every width).
//   (b) MODELED: strong vs weak scaling to 4096 nodes for a CANDLE-scale
//       workload, with the global-batch sweep showing where strong scaling
//       collapses and how weak scaling holds.
//   (c) OVERLAP: bucketed gradient all-reduce with comm/compute overlap —
//       measured on the virtual-node runtime (with a bit-identity check
//       against the monolithic path) and modeled at scale through the
//       overlap-aware perfmodel term.  `--json[=path]` emits the machine-
//       readable report CI archives (default: BENCH_e3.json).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <fstream>

#include "bench/args.hpp"
#include "biodata/workloads.hpp"
#include "hpcsim/perfmodel.hpp"
#include "nn/metrics.hpp"
#include "nn/norm.hpp"
#include "parallel/data_parallel.hpp"
#include "parallel/workload.hpp"

namespace {

using namespace candle;

Model small_model(Index features) {
  Model m;
  m.add(make_dense(64)).add(make_relu());
  m.add(make_dense(32)).add(make_relu());
  m.add(make_dense(1));
  m.build({features}, 3131);
  return m;
}

hpcsim::TrainingWorkload candle_scale_workload() {
  hpcsim::TrainingWorkload w;
  w.name = "candle-scale";
  w.flops_per_sample = 2e9;
  w.parameters = 5e7;
  w.bytes_per_sample = 6e4;
  w.activation_bytes_per_sample = 4e5;
  return w;
}

// ---- (c) bucketed all-reduce with comm/compute overlap -----------------------

Model overlap_bench_model(Index features) {
  Model m;
  m.add(make_dense(256)).add(make_relu());
  m.add(make_dense(256)).add(make_relu());
  m.add(make_dense(256)).add(make_relu());
  m.add(make_dense(1));
  m.build({features}, 4141);
  return m;
}

struct OverlapComparison {
  parallel::DataParallelResult mono;     // monolithic all-reduce
  parallel::DataParallelResult over;     // bucketed + overlapped
  bool bit_identical = false;
  Index grad_elements = 0;
  double measured_step_cut = 0.0;        // 1 - over.wall / mono.wall
  /// Overlap fraction the perfmodel drain law predicts when fed the
  /// MEASURED backward and bucket wire times (what overlap should hide on
  /// hardware where the comm engine runs beside compute).
  double drain_overlap_fraction = 0.0;
};

OverlapComparison measure_overlap_comparison() {
  // Comm-heavy on purpose: wide layers (≈1.3 MB of gradient) and a small
  // per-replica batch, so the all-reduce is a large share of the step.
  biodata::DrugResponseConfig cfg;
  cfg.samples = 256;
  cfg.seed = 401;
  Dataset data = biodata::make_drug_response(cfg);
  auto factory = [&] { return overlap_bench_model(cfg.features()); };
  auto opt = [] { return make_sgd(0.05f); };

  parallel::DataParallelOptions opts;
  opts.replicas = 8;
  opts.batch_per_replica = 4;
  opts.epochs = 2;
  opts.seed = 402;

  OverlapComparison c;
  Model mono_model, over_model;
  c.mono = parallel::train_data_parallel(factory, opt, data,
                                         MeanSquaredError(), opts, &mono_model);

  opts.bucket_bytes = 64 * 1024;
  opts.overlap_comm = true;
  c.over = parallel::train_data_parallel(factory, opt, data,
                                         MeanSquaredError(), opts, &over_model);

  c.grad_elements = mono_model.grad_size();
  std::vector<float> wa(static_cast<std::size_t>(mono_model.num_params()));
  std::vector<float> wb(wa.size());
  mono_model.copy_weights_to(wa);
  over_model.copy_weights_to(wb);
  c.bit_identical = wa == wb;
  c.measured_step_cut =
      c.mono.measured_seconds > 0.0
          ? 1.0 - c.over.measured_seconds / c.mono.measured_seconds
          : 0.0;
  if (c.over.buckets_per_step > 0 && c.over.measured_comm_busy_s > 0.0) {
    const double t_b = c.over.measured_comm_busy_s /
                       static_cast<double>(c.over.buckets_per_step);
    const double predicted = hpcsim::overlapped_exposed_comm_s(
        c.over.buckets_per_step, t_b, c.over.measured_backward_s);
    c.drain_overlap_fraction = 1.0 - predicted / c.over.measured_comm_busy_s;
  }
  return c;
}

/// One modeled strong-scaling row with the monolithic vs bucketed-overlap
/// all-reduce (candle-scale workload).  The bucket size is tuned per scale
/// the way a real deployment tunes it: at small p large buckets amortize
/// latency and still hide behind backward; at large p per-bucket latency
/// dominates, so the sweep falls back toward fewer, bigger buckets (up to
/// the monolithic limit, which overlap can never lose to).
struct ModeledOverlapRow {
  hpcsim::Index nodes = 0;
  hpcsim::StepEstimate base;  // monolithic
  hpcsim::StepEstimate over;  // bucketed + overlapped, best bucket size
  double bucket_mb = 0.0;     // 0 = monolithic won the sweep
  double step_cut = 0.0;
};

std::vector<ModeledOverlapRow> modeled_overlap_rows() {
  const auto node = hpcsim::summit_node();
  const auto fabric = hpcsim::fat_tree_fabric();
  const auto w = candle_scale_workload();
  std::vector<ModeledOverlapRow> rows;
  for (const hpcsim::Index n : {8, 64, 256, 1024, 4096}) {
    hpcsim::ParallelPlan plan;
    plan.data_replicas = n;
    plan.batch_per_replica = std::max<hpcsim::Index>(1, 4096 / n);
    ModeledOverlapRow row;
    row.nodes = n;
    row.base = hpcsim::estimate_step(node, fabric, w, plan);
    row.over = row.base;  // monolithic is the sweep floor
    for (const double mb : {4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0}) {
      plan.bucket_bytes = mb * 1024 * 1024;
      const auto est = hpcsim::estimate_step(node, fabric, w, plan);
      if (est.step_s < row.over.step_s) {
        row.over = est;
        row.bucket_mb = mb;
      }
    }
    row.step_cut = 1.0 - row.over.step_s / row.base.step_s;
    rows.push_back(row);
  }
  return rows;
}

void print_overlap_tables() {
  std::printf("bucketed all-reduce with comm/compute overlap\n");
  const OverlapComparison c = measure_overlap_comparison();
  std::printf("measured, 8 replicas, %lld grad elements, %lld buckets "
              "(single-core host: comm arithmetic shares the CPU with "
              "compute, so wall-clock gains appear only on multi-core "
              "hardware; the schedule and numerics are what is verified "
              "here)\n",
              static_cast<long long>(c.grad_elements),
              static_cast<long long>(c.over.buckets_per_step));
  std::printf("%14s %12s %14s %14s %14s\n", "path", "wall (s)", "backward (s)",
              "comm busy (s)", "exposed (s)");
  std::printf("%14s %12.3f %14.4f %14.4f %14.4f\n", "monolithic",
              c.mono.measured_seconds, c.mono.measured_backward_s,
              c.mono.measured_comm_busy_s, c.mono.measured_exposed_comm_s);
  std::printf("%14s %12.3f %14.4f %14.4f %14.4f\n", "overlapped",
              c.over.measured_seconds, c.over.measured_backward_s,
              c.over.measured_comm_busy_s, c.over.measured_exposed_comm_s);
  std::printf("weights bit-identical: %s; measured overlap fraction %.3f; "
              "drain-law prediction from measured inputs %.3f\n\n",
              c.bit_identical ? "yes" : "NO (BUG)",
              c.over.measured_overlap_fraction, c.drain_overlap_fraction);

  std::printf("modeled strong scaling with overlapped buckets "
              "(candle-scale, global batch 4096, bucket size tuned per "
              "scale)\n");
  std::printf("%8s %14s %14s %12s %14s %12s\n", "nodes", "mono step(ms)",
              "over step(ms)", "bucket(MB)", "overlap frac", "step cut");
  for (const auto& row : modeled_overlap_rows()) {
    std::printf("%8lld %14.2f %14.2f %12.0f %14.3f %11.1f%%\n",
                static_cast<long long>(row.nodes), row.base.step_s * 1e3,
                row.over.step_s * 1e3, row.bucket_mb,
                row.over.overlap_fraction, row.step_cut * 100.0);
  }
  std::printf("(the modeled cut is the overlap mechanism priced on a "
              "multi-node fabric, where bucket wire time genuinely hides "
              "behind the remaining backward compute)\n\n");
}

// ---- --json mode: machine-readable overlap + scaling report -------------------

int run_json_report(const std::string& path) {
  const OverlapComparison c = measure_overlap_comparison();
  std::ofstream out(path);
  out << "{\n  \"experiment\": \"e3_overlap_scaling\",\n";
  out << "  \"measured\": {\n";
  out << "    \"replicas\": 8,\n";
  out << "    \"grad_elements\": " << c.grad_elements << ",\n";
  out << "    \"buckets\": " << c.over.buckets_per_step << ",\n";
  out << "    \"bit_identical_weights\": "
      << (c.bit_identical ? "true" : "false") << ",\n";
  const auto emit_path = [&](const char* name,
                             const parallel::DataParallelResult& r,
                             bool trailing_comma) {
    out << "    \"" << name << "\": {\"wall_s\": " << r.measured_seconds
        << ", \"backward_s\": " << r.measured_backward_s
        << ", \"comm_busy_s\": " << r.measured_comm_busy_s
        << ", \"exposed_comm_s\": " << r.measured_exposed_comm_s
        << ", \"overlap_fraction\": " << r.measured_overlap_fraction << "}"
        << (trailing_comma ? ",\n" : "\n");
  };
  emit_path("monolithic", c.mono, true);
  emit_path("overlapped", c.over, true);
  out << "    \"measured_step_cut_fraction\": " << c.measured_step_cut
      << ",\n";
  out << "    \"drain_law_overlap_fraction\": " << c.drain_overlap_fraction
      << ",\n";
  out << "    \"overlap_fraction_abs_error\": "
      << std::abs(c.drain_overlap_fraction - c.over.measured_overlap_fraction)
      << "\n  },\n";
  out << "  \"modeled\": [\n";
  bool first = true;
  for (const auto& row : modeled_overlap_rows()) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"nodes\": " << row.nodes
        << ", \"step_s_monolithic\": " << row.base.step_s
        << ", \"step_s_overlapped\": " << row.over.step_s
        << ", \"bucket_mb\": " << row.bucket_mb
        << ", \"dp_comm_s\": " << row.over.dp_comm_s
        << ", \"dp_comm_exposed_s\": " << row.over.dp_comm_exposed_s
        << ", \"overlap_fraction\": " << row.over.overlap_fraction
        << ", \"step_cut_fraction\": " << row.step_cut << "}";
  }
  out << "\n  ]\n}\n";
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return 0;
}

void print_tables() {
  std::printf("=== E3: strong vs weak scaling "
              "(claim C3: DNNs do not strong-scale well) ===\n\n");

  // (a) Executable: loss trajectory must be identical across replica
  // counts at fixed global batch (synchronous SGD invariance).
  biodata::DrugResponseConfig cfg;
  cfg.samples = 512;
  cfg.seed = 301;
  Dataset data = biodata::make_drug_response(cfg);
  std::printf("measured virtual-node data parallelism "
              "(fixed global batch 32, real ring all-reduce)\n");
  std::printf("%9s %14s %14s\n", "replicas", "epoch-3 loss", "wall (s)");
  for (Index replicas : {1, 2, 4, 8}) {
    parallel::DataParallelOptions opts;
    opts.replicas = replicas;
    opts.batch_per_replica = 32 / replicas;
    opts.epochs = 3;
    opts.seed = 302;
    const auto res = parallel::train_data_parallel(
        [&] { return small_model(cfg.features()); },
        [] { return make_sgd(0.05f); }, data, MeanSquaredError(), opts);
    std::printf("%9lld %14.5f %14.2f\n", static_cast<long long>(replicas),
                static_cast<double>(res.epoch_loss.back()),
                res.measured_seconds);
  }
  std::printf("(loss column must be ~constant: the decomposition changes "
              "the machine, not the mathematics)\n\n");

  // (b) Modeled scaling curves.
  const auto node = hpcsim::summit_node();
  const auto fabric = hpcsim::fat_tree_fabric();
  const auto w = candle_scale_workload();
  const std::vector<hpcsim::Index> counts = {1,   4,    16,   64,
                                             256, 1024, 4096};

  for (const hpcsim::Index global_batch : {1024, 4096, 16384}) {
    std::printf("modeled strong scaling, global batch %lld (%s, %s)\n",
                static_cast<long long>(global_batch), node.name.c_str(),
                "fat-tree");
    std::printf("%8s %12s %12s %12s %14s\n", "nodes", "step(ms)", "speedup",
                "efficiency", "comm fraction");
    for (const auto& pt :
         hpcsim::strong_scaling(node, fabric, w, global_batch, counts)) {
      std::printf("%8lld %12.2f %12.1f %12.3f %14.3f\n",
                  static_cast<long long>(pt.nodes), pt.step_s * 1e3,
                  pt.speedup, pt.efficiency, pt.comm_fraction);
    }
    std::printf("\n");
  }

  std::printf("modeled weak scaling (batch 256/node)\n");
  std::printf("%8s %12s %12s %14s\n", "nodes", "step(ms)", "efficiency",
              "comm fraction");
  for (const auto& pt :
       hpcsim::weak_scaling(node, fabric, w, 256, counts)) {
    std::printf("%8lld %12.2f %12.3f %14.3f\n",
                static_cast<long long>(pt.nodes), pt.step_s * 1e3,
                pt.efficiency, pt.comm_fraction);
  }
  // (c) Ablation: normalization choice under the shrinking per-replica
  // batches strong scaling forces.  BatchNorm statistics degrade with the
  // local batch; LayerNorm is batch-independent.
  std::printf("normalization ablation: test accuracy after training at a "
              "given LOCAL batch (tumor-type MLP)\n");
  std::printf("%12s %12s %12s\n", "local batch", "batchnorm", "layernorm");
  biodata::TumorTypeConfig tcfg;
  tcfg.samples = 400;
  tcfg.classes = 4;
  tcfg.profile_length = 64;
  tcfg.signal = 0.5f;
  tcfg.module_width = 6;
  tcfg.seed = 321;
  Dataset tumor = biodata::make_tumor_type_flat(tcfg);
  auto [ttrain, ttest] = split(tumor, 0.8, 322);
  for (Index local_batch : {32, 8, 2}) {
    double accs[2] = {0.0, 0.0};
    for (int which = 0; which < 2; ++which) {
      Model m;
      m.add(make_dense(32));
      if (which == 0) {
        m.add(make_batchnorm());
      } else {
        m.add(make_layernorm());
      }
      m.add(make_relu()).add(make_dense(tcfg.classes));
      m.build({tcfg.profile_length}, 323);
      SoftmaxCrossEntropy xent;
      Adam opt(1e-3f);
      FitOptions nfo;
      nfo.epochs = 8;
      nfo.batch_size = local_batch;
      nfo.seed = 324;
      fit(m, ttrain, nullptr, xent, opt, nfo);
      accs[which] = accuracy(m.predict(ttest.x), ttest.y);
    }
    std::printf("%12lld %12.3f %12.3f\n", static_cast<long long>(local_batch),
                accs[0], accs[1]);
  }

  print_overlap_tables();

  std::printf("\nexpected shape: strong scaling efficiency collapses "
              "(smaller local batches starve the GEMMs while the gradient "
              "all-reduce is batch-independent); larger global batches push "
              "the collapse out; weak scaling holds far better — hence the "
              "paper's model/data/search-parallel combination; batch-"
              "statistics layers (batchnorm) add a quality penalty at the "
              "small local batches strong scaling forces\n\n");
}

// Timed: one measured data-parallel step at each replica count.
void BM_DataParallelStep(benchmark::State& state) {
  const Index replicas = state.range(0);
  biodata::DrugResponseConfig cfg;
  cfg.samples = 256;
  cfg.seed = 311;
  Dataset data = biodata::make_drug_response(cfg);
  for (auto _ : state) {
    parallel::DataParallelOptions opts;
    opts.replicas = replicas;
    opts.batch_per_replica = 32 / replicas;
    opts.epochs = 1;
    opts.seed = 312;
    const auto res = parallel::train_data_parallel(
        [&] { return small_model(cfg.features()); },
        [] { return make_sgd(0.05f); }, data, MeanSquaredError(), opts);
    benchmark::DoNotOptimize(res.steps);
  }
}

BENCHMARK(BM_DataParallelStep)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  candle::bench::Args args;
  args.soft_option("json", "BENCH_e3.json");
  args.allow_unknown();  // leftover flags go to benchmark::Initialize
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "bench_e3_scaling: %s\n", args.error().c_str());
    return 2;
  }
  if (args.has("json")) return run_json_report(args.get("json"));
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment E8 — claim C6: "a high-bandwidth communication fabric between
// (perhaps modest scale) groups of processors to support network model
// parallelism".
//
// Tables:
//   (a) all-reduce time vs message size x algorithm x party count on the
//       fat-tree (ring/tree crossover);
//   (b) topology comparison at gradient-sized messages;
//   (c) model-parallel group size sweep: pipeline step time vs stage count
//       for a deep network — the "modest scale groups" sweet spot;
//   (d) MEASURED executable ring all-reduce scaling on virtual nodes.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "hpcsim/fabric.hpp"
#include "nn/model.hpp"
#include "parallel/collectives.hpp"
#include "parallel/model_parallel.hpp"
#include "runtime/timer.hpp"

namespace {

using namespace candle;
using hpcsim::AllReduceAlgo;

void print_tables() {
  std::printf("=== E8: fabric for model parallelism (claim C6) ===\n\n");

  const auto ft = hpcsim::fat_tree_fabric();
  std::printf("(a) all-reduce time (ms) on fat-tree, 256 ranks\n");
  std::printf("%12s %12s %12s %18s %10s\n", "message", "ring", "tree",
              "halving-doubling", "best");
  for (double bytes : {1e2, 1e4, 1e6, 1e8, 4e8}) {
    const double r = hpcsim::allreduce_time_s(ft, AllReduceAlgo::Ring, 256, bytes);
    const double t =
        hpcsim::allreduce_time_s(ft, AllReduceAlgo::BinomialTree, 256, bytes);
    const double h = hpcsim::allreduce_time_s(
        ft, AllReduceAlgo::HalvingDoubling, 256, bytes);
    std::printf("%10.0e B %12.3f %12.3f %18.3f %10s\n", bytes, r * 1e3,
                t * 1e3, h * 1e3,
                hpcsim::allreduce_algo_name(
                    hpcsim::best_allreduce_algo(ft, 256, bytes))
                    .c_str());
  }

  std::printf("\n(b) 200 MB gradient all-reduce (ring) across topologies\n");
  std::printf("%-12s %10s %10s %12s\n", "topology", "64 ranks", "1024",
              "16384");
  for (const auto& fabric : hpcsim::all_fabric_presets()) {
    std::printf("%-12s", hpcsim::topology_name(fabric.topology).c_str());
    for (hpcsim::Index p : {64, 1024, 16384}) {
      std::printf(" %8.1fms",
                  hpcsim::allreduce_time_s(fabric, AllReduceAlgo::Ring, p,
                                           2e8) *
                      1e3);
    }
    std::printf("\n");
  }

  // (c) Pipeline group-size sweep on a deep, wide MLP (stage compute must
  // dwarf the per-microbatch boundary latency for pipelining to pay).
  Model deep;
  for (int i = 0; i < 8; ++i) {
    deep.add(make_dense(2048)).add(make_relu());
  }
  deep.add(make_dense(8));
  deep.build({2048}, 881);
  const auto node = hpcsim::summit_node();
  std::printf("\n(c) pipeline model parallelism, deep MLP "
              "(%lld params), 32 microbatches x 64 samples\n",
              static_cast<long long>(deep.num_params()));
  std::printf("%8s %12s %12s %12s %12s\n", "stages", "step (ms)",
              "speedup", "bubble", "comm (ms)");
  for (Index stages : {1, 2, 4, 8, 16}) {
    const auto plan = parallel::balance_stages(deep, stages);
    const auto est =
        parallel::estimate_pipeline(deep, plan, 32, 64, node, ft);
    std::printf("%8lld %12.3f %12.2f %12.3f %12.3f\n",
                static_cast<long long>(stages), est.step_seconds * 1e3,
                est.speedup, est.bubble_fraction, est.comm_seconds * 1e3);
  }

  // (d) Measured executable ring all-reduce.
  std::printf("\n(d) measured shared-memory ring all-reduce "
              "(4 MB buffer)\n");
  std::printf("%8s %12s\n", "ranks", "time (ms)");
  const Index n = 1 << 20;
  for (Index p : {2, 4, 8}) {
    std::vector<std::vector<float>> bufs(static_cast<std::size_t>(p));
    for (auto& b : bufs) b.assign(static_cast<std::size_t>(n), 1.0f);
    Stopwatch sw;
    parallel::ShmCommunicator comm(p);
    std::vector<std::thread> threads;
    for (Index r = 0; r < p; ++r) {
      threads.emplace_back(
          [&, r] { comm.allreduce_ring(r, bufs[static_cast<std::size_t>(r)]); });
    }
    for (auto& t : threads) t.join();
    std::printf("%8lld %12.2f\n", static_cast<long long>(p),
                sw.milliseconds());
  }
  std::printf("\nexpected shape: ring/halving-doubling win large gradient "
              "messages, log-round algorithms win small ones; low-diameter "
              "topologies (dragonfly) dominate at scale; pipeline speedup "
              "saturates after a handful of stages — hence 'modest scale "
              "groups' with a fat pipe between them\n\n");
}

// Timed: modeled collective evaluation cost (used inside schedulers).
void BM_AllReduceModel(benchmark::State& state) {
  const auto fabric = hpcsim::fat_tree_fabric();
  double bytes = 1e6;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hpcsim::allreduce_time_s(
        fabric, AllReduceAlgo::Ring, 1024, bytes));
    bytes = bytes < 1e9 ? bytes * 1.001 : 1e6;
  }
}

BENCHMARK(BM_AllReduceModel)->Unit(benchmark::kNanosecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

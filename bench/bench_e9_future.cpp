// Experiment E9 — the paper's forward-looking remarks, reproduced as
// measurable extensions:
//   * "future DNNs may rely less on dense ... patterns": magnitude pruning
//     accuracy-vs-sparsity on a trained classifier (measured) and the FLOP
//     savings a sparse unit could bank (modeled);
//   * gradient compression: top-k + error feedback wire-byte reduction
//     (measured convergence) and its effect on the modeled all-reduce at
//     scale (the fix for the claim-C3 bottleneck);
//   * resilience: Young/Daly checkpoint overhead across machine scales —
//     the operational cost of the large campaigns in claim C4.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "biodata/workloads.hpp"
#include "hpcsim/fabric.hpp"
#include "hpcsim/resilience.hpp"
#include "nn/metrics.hpp"
#include "nn/pruning.hpp"
#include "nn/trainer.hpp"
#include "parallel/compression.hpp"
#include "parallel/data_parallel.hpp"

namespace {

using namespace candle;

void print_tables() {
  std::printf("=== E9: sparsity, gradient compression, resilience "
              "(the paper's forward-looking remarks) ===\n\n");

  // (a) Pruning sweep on the AMR classifier.
  biodata::AmrConfig amr;
  amr.samples = 2000;
  amr.seed = 901;
  Dataset d = biodata::make_amr(amr);
  auto [train, test] = split(d, 0.8, 902);
  Model m;
  m.add(make_dense(64)).add(make_relu()).add(make_dense(32)).add(make_relu());
  m.add(make_dense(1));
  m.build({amr.kmers}, 903);
  BinaryCrossEntropy bce;
  Adam opt(3e-3f);
  FitOptions fo;
  fo.epochs = 20;
  fo.batch_size = 64;
  fo.seed = 904;
  fit(m, train, nullptr, bce, opt, fo);
  const double dense_auc = roc_auc(m.predict(test.x), test.y);

  std::printf("(a) magnitude pruning of the trained AMR classifier "
              "(dense test AUC %.3f)\n",
              dense_auc);
  std::printf("%10s %12s %14s\n", "sparsity", "test AUC", "FLOPs saved");
  std::vector<float> dense_weights(static_cast<std::size_t>(m.num_params()));
  m.copy_weights_to(dense_weights);
  for (double sparsity : {0.5, 0.7, 0.9, 0.95}) {
    m.set_weights_from(dense_weights);  // restart from the dense optimum
    PruningMask mask(m);
    Adam ft(1e-3f);
    prune_and_finetune(m, mask, sparsity, train.x, train.y, bce, ft, 40);
    std::printf("%10.2f %12.3f %13.0f%%\n", sparsity,
                roc_auc(m.predict(test.x), test.y),
                100.0 * mask.flop_savings());
  }

  // (b) Gradient compression: measured convergence + modeled all-reduce.
  std::printf("\n(b) top-k gradient compression with error feedback "
              "(4 replicas, 10 epochs, drug-response blobs)\n");
  std::printf("%10s %14s %16s %22s\n", "fraction", "final loss",
              "wire B/step", "modeled 1024-node allreduce");
  Pcg32 rng(905);
  Dataset blobs{Tensor({512, 6}), Tensor({512})};
  for (Index i = 0; i < 512; ++i) {
    const float cls = static_cast<float>(i % 2);
    blobs.y[i] = cls;
    for (Index j = 0; j < 6; ++j) {
      blobs.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  const auto fabric = hpcsim::fat_tree_fabric();
  for (double fraction : {1.0, 0.25, 0.05, 0.01}) {
    parallel::DataParallelOptions opts;
    opts.replicas = 4;
    opts.batch_per_replica = 16;
    opts.epochs = 10;
    opts.seed = 906;
    opts.gradient_topk_fraction = fraction;
    const auto res = parallel::train_data_parallel(
        [] {
          Model mm;
          mm.add(make_dense(12)).add(make_relu()).add(make_dense(2));
          mm.build({6}, 907);
          return mm;
        },
        [] { return make_adam(5e-3f); }, blobs, SoftmaxCrossEntropy(), opts);
    // Model the same wire volume per rank for a 50M-param net at scale.
    const double scale_bytes = fraction < 1.0 ? 8.0 * fraction * 5e7
                                              : 4.0 * 5e7;
    const double t = hpcsim::allreduce_time_s(
        fabric, hpcsim::AllReduceAlgo::Ring, 1024, scale_bytes);
    std::printf("%10.2f %14.4f %16.0f %19.1f ms\n", fraction,
                static_cast<double>(res.epoch_loss.back()),
                res.grad_bytes_per_step, t * 1e3);
  }

  // (c) Checkpoint/restart overhead across machine scales.
  std::printf("\n(c) Young/Daly checkpointing for a 24 h training campaign "
              "(node MTBF 20k h, 1 GB state)\n");
  std::printf("%8s %14s %18s %18s\n", "nodes", "job MTBF (h)",
              "opt interval (min)", "overhead factor");
  const double work = 24.0 * 3600.0;
  for (hpcsim::Index nodes : {64, 256, 1024, 4096, 16384}) {
    hpcsim::ResilienceConfig cfg;
    cfg.nodes = nodes;
    std::printf("%8lld %14.1f %18.1f %18.3f\n",
                static_cast<long long>(nodes),
                hpcsim::job_mtbf_s(cfg) / 3600.0,
                hpcsim::optimal_checkpoint_interval_s(cfg) / 60.0,
                hpcsim::optimal_overhead_factor(cfg, work));
  }
  std::printf("\nexpected shape: ~90%% sparsity holds AUC (sparse-friendly "
              "hardware banks those FLOPs); 1-5%% top-k cuts the scaled "
              "all-reduce by an order of magnitude at unchanged final loss; "
              "checkpoint overhead is negligible at 64 nodes and material "
              "at 16k — all three are architecture asks beyond dense "
              "GEMM\n\n");
}

void BM_TopKSparsify(benchmark::State& state) {
  Pcg32 rng(908);
  std::vector<float> g(1 << 20);
  for (auto& v : g) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::top_k_sparsify(g, 0.01));
  }
  state.counters["entries/s"] = benchmark::Counter(
      static_cast<double>(g.size()) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}

BENCHMARK(BM_TopKSparsify)->Unit(benchmark::kMillisecond);

void BM_PruneGlobal(benchmark::State& state) {
  Model m;
  m.add(make_dense(256)).add(make_relu()).add(make_dense(128));
  m.build({128}, 909);
  std::vector<float> w(static_cast<std::size_t>(m.num_params()));
  m.copy_weights_to(w);
  for (auto _ : state) {
    m.set_weights_from(w);
    PruningMask mask(m);
    mask.prune_global_magnitude(m, 0.9);
    benchmark::DoNotOptimize(mask.sparsity());
  }
}

BENCHMARK(BM_PruneGlobal)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

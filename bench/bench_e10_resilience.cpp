// Experiment E10 — resilience at scale: the Young/Daly checkpoint model
// validated against the executable fault-tolerant runtime.
//
// Tables:
//   (a) analytic overhead landscape: optimal checkpoint interval and
//       expected overhead factor vs node count x per-node MTBF;
//   (b) Monte-Carlo simulation vs the closed form at the optimum and at
//       +/-2x perturbed intervals (the optimum is a real minimum);
//   (c) MEASURED: the resilient data-parallel trainer under a dense random
//       crash schedule — modeled-accounting overhead factor vs the analytic
//       prediction for the same failure intensity, across crash densities.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "hpcsim/resilience.hpp"
#include "nn/model.hpp"
#include "nn/serialize.hpp"
#include "parallel/resilient.hpp"
#include "runtime/fault.hpp"
#include "runtime/rng.hpp"

namespace {

using namespace candle;

Dataset blob_dataset(Index n, std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({n, 6}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < 6; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  return d;
}

void print_tables() {
  std::printf("=== E10: fault-tolerant training (Young/Daly vs runtime) ===\n\n");

  std::printf("(a) optimal checkpoint interval / overhead factor\n");
  std::printf("    (8 GB state @ 50 GB/s, 60 s restart)\n");
  std::printf("%8s", "nodes");
  for (double mtbf_h : {1000.0, 5000.0, 25000.0}) {
    std::printf("   MTBF %6.0fh", mtbf_h);
  }
  std::printf("\n");
  for (Index nodes : {256, 1024, 4096, 16384}) {
    std::printf("%8lld", static_cast<long long>(nodes));
    for (double mtbf_h : {1000.0, 5000.0, 25000.0}) {
      hpcsim::ResilienceConfig cfg;
      cfg.nodes = nodes;
      cfg.node_mtbf_hours = mtbf_h;
      cfg.checkpoint_state_gb = 8.0;
      cfg.checkpoint_bandwidth_gbs = 50.0;
      cfg.restart_overhead_s = 60.0;
      const double interval = hpcsim::optimal_checkpoint_interval_s(cfg);
      const double work = 24.0 * 3600.0;
      const double factor =
          hpcsim::expected_runtime_s(cfg, work, interval) / work;
      std::printf("  %6.0fs %1.3fx", interval, factor);
    }
    std::printf("\n");
  }

  std::printf("\n(b) simulated / analytic runtime at the optimum and +/-2x\n");
  {
    hpcsim::ResilienceConfig cfg;
    cfg.nodes = 4096;
    cfg.node_mtbf_hours = 1000.0;
    cfg.checkpoint_state_gb = 50.0;
    cfg.checkpoint_bandwidth_gbs = 50.0;
    cfg.restart_overhead_s = 60.0;
    const double opt = hpcsim::optimal_checkpoint_interval_s(cfg);
    const double work = 200.0 * opt;
    std::printf("%14s %12s %12s %10s\n", "interval", "analytic", "simulated",
                "ratio");
    for (double scale : {0.5, 1.0, 2.0}) {
      const double interval = scale * opt;
      const double a = hpcsim::expected_runtime_s(cfg, work, interval);
      const double s =
          hpcsim::simulate_runtime_s(cfg, work, interval, 800, 99);
      std::printf("%8.1fs x%3.1f %11.0fs %11.0fs %9.3f\n", interval, scale,
                  a, s, s / a);
    }
  }

  std::printf("\n(c) MEASURED resilient trainer vs analytic prediction\n");
  std::printf("    (4 replicas, 200 steps, ckpt every 10, crash density sweep)\n");
  std::printf("%10s %10s %12s %12s %10s\n", "crashes", "restarts",
              "measured", "analytic", "ratio");
  const Dataset d = blob_dataset(256, 91);
  for (Index crashes : {4, 8, 16, 24}) {
    parallel::ResilientOptions o;
    o.train.replicas = 4;
    o.train.batch_per_replica = 16;
    o.train.epochs = 50;  // 200 planned steps
    o.train.seed = 92;
    o.checkpoint_every_steps = 10;
    o.checkpoint_path = "/tmp/candle_bench_e10.bin";
    o.step_seconds = 1.0;
    // Machine model tuned so the analytic failure count matches the
    // injected crash density: job MTBF = expected runtime / crashes.
    o.resilience.nodes = 3600;
    o.resilience.checkpoint_state_gb = 100.0;    // 2 s checkpoints
    o.resilience.checkpoint_bandwidth_gbs = 50.0;
    o.resilience.restart_overhead_s = 3.0;
    o.resilience.node_mtbf_hours = 240.0 / static_cast<double>(crashes);
    o.max_recoveries = 2 * crashes + 8;
    o.faults = runtime::random_fault_schedule(1234, 200, 4, crashes);
    parallel::ResilientResult res = parallel::train_resilient(
        [] {
          Model m;
          m.add(make_dense(12)).add(make_relu()).add(make_dense(2));
          m.build({6}, 93);
          return m;
        },
        [] { return make_adam(5e-3f); }, d, SoftmaxCrossEntropy(), o);
    std::printf("%10lld %10lld %11.2fx %11.2fx %9.3f\n",
                static_cast<long long>(res.crashes),
                static_cast<long long>(res.restarts), res.overhead_factor(),
                res.analytic_overhead_factor,
                res.overhead_factor() / res.analytic_overhead_factor);
    std::filesystem::remove(o.checkpoint_path);
  }
  std::printf("\nexpected shape: overhead factor grows with crash density and "
              "the measured/analytic ratio stays near 1 — the closed form "
              "the paper's campaign planning relies on is reproduced by the "
              "executable runtime\n\n");
}

// Timed: full checkpoint save/load round trip (the recovery critical path).
void BM_CheckpointRoundTrip(benchmark::State& state) {
  Model m;
  m.add(make_dense(256)).add(make_relu()).add(make_dense(64));
  m.build({128}, 7);
  auto opt = make_adam(1e-3f);
  const std::string path = "/tmp/candle_bench_e10_rt.bin";
  for (auto _ : state) {
    save_checkpoint(m, opt.get(), 1, path);
    load_checkpoint(m, opt.get(), path);
  }
  std::filesystem::remove(path);
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(m.num_params()) * 2 *
      static_cast<std::int64_t>(sizeof(float)));
}

BENCHMARK(BM_CheckpointRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment E10 — resilience at scale: the Young/Daly checkpoint model
// validated against the executable fault-tolerant runtime.
//
// Tables:
//   (a) analytic overhead landscape: optimal checkpoint interval and
//       expected overhead factor vs node count x per-node MTBF;
//   (b) Monte-Carlo simulation vs the closed form at the optimum and at
//       +/-2x perturbed intervals (the optimum is a real minimum);
//   (c) MEASURED: the resilient data-parallel trainer under a dense random
//       crash schedule — modeled-accounting overhead factor vs the analytic
//       prediction for the same failure intensity, across crash densities.
//
// `--mitigation[=none,backup,stale]` bypasses the google-benchmark runner
// and sweeps the straggler-mitigation disciplines under an identical seeded
// heavy-tail (Pareto) straggler schedule, printing table (d) and emitting a
// machine-readable report (`--json=PATH`, default BENCH_e10.json).  The
// report is a generated artifact — CI emits and uploads it per commit; it
// is not checked into the repository.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/args.hpp"
#include "hpcsim/resilience.hpp"
#include "nn/model.hpp"
#include "nn/serialize.hpp"
#include "parallel/resilient.hpp"
#include "runtime/fault.hpp"
#include "runtime/rng.hpp"

namespace {

using namespace candle;

Dataset blob_dataset(Index n, std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({n, 6}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < 6; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  return d;
}

void print_tables() {
  std::printf("=== E10: fault-tolerant training (Young/Daly vs runtime) ===\n\n");

  std::printf("(a) optimal checkpoint interval / overhead factor\n");
  std::printf("    (8 GB state @ 50 GB/s, 60 s restart)\n");
  std::printf("%8s", "nodes");
  for (double mtbf_h : {1000.0, 5000.0, 25000.0}) {
    std::printf("   MTBF %6.0fh", mtbf_h);
  }
  std::printf("\n");
  for (Index nodes : {256, 1024, 4096, 16384}) {
    std::printf("%8lld", static_cast<long long>(nodes));
    for (double mtbf_h : {1000.0, 5000.0, 25000.0}) {
      hpcsim::ResilienceConfig cfg;
      cfg.nodes = nodes;
      cfg.node_mtbf_hours = mtbf_h;
      cfg.checkpoint_state_gb = 8.0;
      cfg.checkpoint_bandwidth_gbs = 50.0;
      cfg.restart_overhead_s = 60.0;
      const double interval = hpcsim::optimal_checkpoint_interval_s(cfg);
      const double work = 24.0 * 3600.0;
      const double factor =
          hpcsim::expected_runtime_s(cfg, work, interval) / work;
      std::printf("  %6.0fs %1.3fx", interval, factor);
    }
    std::printf("\n");
  }

  std::printf("\n(b) simulated / analytic runtime at the optimum and +/-2x\n");
  {
    hpcsim::ResilienceConfig cfg;
    cfg.nodes = 4096;
    cfg.node_mtbf_hours = 1000.0;
    cfg.checkpoint_state_gb = 50.0;
    cfg.checkpoint_bandwidth_gbs = 50.0;
    cfg.restart_overhead_s = 60.0;
    const double opt = hpcsim::optimal_checkpoint_interval_s(cfg);
    const double work = 200.0 * opt;
    std::printf("%14s %12s %12s %10s\n", "interval", "analytic", "simulated",
                "ratio");
    for (double scale : {0.5, 1.0, 2.0}) {
      const double interval = scale * opt;
      const double a = hpcsim::expected_runtime_s(cfg, work, interval);
      const double s =
          hpcsim::simulate_runtime_s(cfg, work, interval, 800, 99);
      std::printf("%8.1fs x%3.1f %11.0fs %11.0fs %9.3f\n", interval, scale,
                  a, s, s / a);
    }
  }

  std::printf("\n(c) MEASURED resilient trainer vs analytic prediction\n");
  std::printf("    (4 replicas, 200 steps, ckpt every 10, crash density sweep)\n");
  std::printf("%10s %10s %12s %12s %10s\n", "crashes", "restarts",
              "measured", "analytic", "ratio");
  const Dataset d = blob_dataset(256, 91);
  for (Index crashes : {4, 8, 16, 24}) {
    parallel::ResilientOptions o;
    o.train.replicas = 4;
    o.train.batch_per_replica = 16;
    o.train.epochs = 50;  // 200 planned steps
    o.train.seed = 92;
    o.checkpoint_every_steps = 10;
    o.checkpoint_path = "/tmp/candle_bench_e10.bin";
    o.step_seconds = 1.0;
    // Machine model tuned so the analytic failure count matches the
    // injected crash density: job MTBF = expected runtime / crashes.
    o.resilience.nodes = 3600;
    o.resilience.checkpoint_state_gb = 100.0;    // 2 s checkpoints
    o.resilience.checkpoint_bandwidth_gbs = 50.0;
    o.resilience.restart_overhead_s = 3.0;
    o.resilience.node_mtbf_hours = 240.0 / static_cast<double>(crashes);
    o.max_recoveries = 2 * crashes + 8;
    o.faults = runtime::random_fault_schedule(1234, 200, 4, crashes);
    parallel::ResilientResult res = parallel::train_resilient(
        [] {
          Model m;
          m.add(make_dense(12)).add(make_relu()).add(make_dense(2));
          m.build({6}, 93);
          return m;
        },
        [] { return make_adam(5e-3f); }, d, SoftmaxCrossEntropy(), o);
    std::printf("%10lld %10lld %11.2fx %11.2fx %9.3f\n",
                static_cast<long long>(res.crashes),
                static_cast<long long>(res.restarts), res.overhead_factor(),
                res.analytic_overhead_factor,
                res.overhead_factor() / res.analytic_overhead_factor);
    std::filesystem::remove(o.checkpoint_path);
  }
  std::printf("\nexpected shape: overhead factor grows with crash density and "
              "the measured/analytic ratio stays near 1 — the closed form "
              "the paper's campaign planning relies on is reproduced by the "
              "executable runtime\n\n");
}

// ---- --mitigation mode: straggler-discipline sweep --------------------------
// The acceptance configuration of the straggler harness, at bench scale:
// 8 virtual ranks, a seeded Pareto straggler schedule whose every delay is
// at least 5x the nominal step time, and the three execution disciplines
// run over the identical schedule.  Numbers are the modeled accounting
// (modeled_wallclock_s = work + stall + wire time), so the sweep is
// deterministic and machine-independent.

struct MitigationRow {
  std::string mode;
  parallel::ResilientResult res;
  float final_loss = 0.0f;
};

MitigationRow run_mitigation(parallel::MitigationMode mode,
                             const Dataset& d,
                             const runtime::FaultSchedule& sched) {
  parallel::ResilientOptions o;
  o.train.replicas = 8;
  o.train.batch_per_replica = 8;
  o.train.epochs = 10;  // 256 / 64 = 4 steps/epoch -> 40 planned steps
  o.train.seed = 71;
  o.step_seconds = 0.02;
  o.checkpoint_every_steps = 20;
  o.checkpoint_path = "/tmp/candle_bench_e10_mitigation.bin";
  o.collective_timeout = std::chrono::milliseconds(2000);
  o.mitigation = mode;
  o.backup_workers = 2;
  o.staleness_bound = 8;
  o.faults = sched;
  MitigationRow row;
  row.mode = parallel::mitigation_mode_name(mode);
  Model trained;
  row.res = parallel::train_resilient(
      [] {
        Model m;
        m.add(make_dense(12)).add(make_relu()).add(make_dense(2));
        m.build({6}, 62);
        return m;
      },
      [] { return make_adam(5e-3f); }, d, SoftmaxCrossEntropy(), o, &trained);
  const Tensor pred = trained.forward(d.x, /*training=*/false);
  row.final_loss = SoftmaxCrossEntropy().value(pred, d.y);
  std::filesystem::remove(o.checkpoint_path);
  std::filesystem::remove(o.checkpoint_path + ".tmp");
  return row;
}

int run_mitigation_sweep(const std::string& modes_csv,
                         const std::string& json_path) {
  const auto want = [&](const char* name) {
    return modes_csv.empty() || modes_csv.find(name) != std::string::npos;
  };
  const Dataset d = blob_dataset(256, 61);
  const runtime::FaultSchedule sched = runtime::pareto_straggler_schedule(
      905, /*steps=*/40, /*ranks=*/8, /*stragglers=*/6,
      /*alpha=*/2.5, /*min_delay_s=*/0.1, /*max_delay_s=*/0.3);

  std::printf("=== E10(d): straggler mitigation sweep ===\n");
  std::printf("    (8 ranks, 40 steps @ 0.02 s, 6 Pareto stragglers, "
              "delay in [0.1, 0.3] s, k=2 backups, staleness bound 8)\n");
  std::printf("%8s %10s %10s %10s %12s %8s %8s %10s\n", "mode", "stall_s",
              "comm_s", "wallclock", "vs-none", "quorum", "stale", "loss");

  std::vector<MitigationRow> rows;
  for (const auto mode :
       {parallel::MitigationMode::None, parallel::MitigationMode::Backup,
        parallel::MitigationMode::BoundedStaleness}) {
    if (!want(parallel::mitigation_mode_name(mode))) continue;
    rows.push_back(run_mitigation(mode, d, sched));
  }
  double none_wallclock = 0.0;
  for (const auto& row : rows) {
    if (row.mode == "none") none_wallclock = row.res.modeled_wallclock_s();
  }
  std::ofstream json(json_path);
  json << "{\n  \"experiment\": \"e10_straggler_mitigation\",\n"
       << "  \"ranks\": 8, \"steps\": 40, \"step_seconds\": 0.02,\n"
       << "  \"stragglers\": 6, \"pareto_alpha\": 2.5,\n"
       << "  \"min_delay_s\": 0.1, \"max_delay_s\": 0.3,\n"
       << "  \"backup_workers\": 2, \"staleness_bound\": 8,\n"
       << "  \"modes\": [\n";
  bool first = true;
  for (const auto& row : rows) {
    const double wc = row.res.modeled_wallclock_s();
    const double speedup = none_wallclock > 0.0 ? none_wallclock / wc : 1.0;
    std::printf("%8s %10.3f %10.6f %10.3f %11.2fx %8lld %8lld %10.4f\n",
                row.mode.c_str(), row.res.modeled_stall_s,
                row.res.modeled_comm_s, wc, speedup,
                static_cast<long long>(row.res.quorum_commits),
                static_cast<long long>(row.res.stale_applied), row.final_loss);
    if (!first) json << ",\n";
    first = false;
    json << "    {\"mode\": \"" << row.mode
         << "\", \"modeled_stall_s\": " << row.res.modeled_stall_s
         << ", \"modeled_comm_s\": " << row.res.modeled_comm_s
         << ", \"modeled_wallclock_s\": " << wc
         << ", \"speedup_vs_none\": " << speedup
         << ", \"quorum_commits\": " << row.res.quorum_commits
         << ", \"late_discards\": " << row.res.late_discards
         << ", \"stale_applied\": " << row.res.stale_applied
         << ", \"stale_clamped\": " << row.res.stale_clamped
         << ", \"mean_staleness\": " << row.res.mean_staleness
         << ", \"final_loss\": " << row.final_loss << "}";
  }
  json << "\n  ]\n}\n";
  std::printf("\nexpected shape: backup and stale cut the stall term (and the "
              "quorum wire time) while final loss stays within tolerance of "
              "synchronous; wrote %s\n\n",
              json_path.c_str());
  return 0;
}

// Timed: full checkpoint save/load round trip (the recovery critical path).
void BM_CheckpointRoundTrip(benchmark::State& state) {
  Model m;
  m.add(make_dense(256)).add(make_relu()).add(make_dense(64));
  m.build({128}, 7);
  auto opt = make_adam(1e-3f);
  const std::string path = "/tmp/candle_bench_e10_rt.bin";
  for (auto _ : state) {
    save_checkpoint(m, opt.get(), 1, path);
    load_checkpoint(m, opt.get(), path);
  }
  std::filesystem::remove(path);
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) *
      static_cast<std::int64_t>(m.num_params()) * 2 *
      static_cast<std::int64_t>(sizeof(float)));
}

BENCHMARK(BM_CheckpointRoundTrip)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  candle::bench::Args args;
  args.soft_option("mitigation", "").option("json", "BENCH_e10.json");
  args.allow_unknown();  // leftover flags go to benchmark::Initialize
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "bench_e10_resilience: %s\n", args.error().c_str());
    return 2;
  }
  if (args.has("mitigation")) {
    return run_mitigation_sweep(args.get("mitigation"), args.get("json"));
  }
  print_tables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}

// Experiment E13 — parallel data ingestion: the double-buffered prefetch
// pipeline (src/data) under an expensive sample source, pinned against the
// hpcsim ingest drain law.
//
// Tables:
//   (a) calibration: per-step batch-assembly cost at the synthetic per-
//       sample fetch price, and the pure-compute step time it must hide
//       behind;
//   (b) MEASURED depth sweep at non-trivial fetch cost: synchronous
//       assembly (prefetch_depth 1, no fetch threads) vs double buffering —
//       the acceptance gate requires >= 20% step-time reduction, and the
//       measured step is pinned against estimate_step_with_ingest's drain
//       law (~10%);
//   (c) cheap-source sweep (fetch cost 0): prefetching must not regress
//       the step (> ~10%) when there is nothing to hide;
//   (d) bit-identity: every configuration's per-epoch loss and final
//       weights must be IDENTICAL — prefetch changes when batches are
//       assembled, never what they contain.  This gate always runs.
//
// Honesty note (same spirit as bench_e3's 1-core note): the pipeline needs
// real spare cores for the producer and fetcher threads; on hosts with
// fewer than (replicas + 2) cores the background assembly timeshares with
// training compute and the perf gates are reported informationally instead.
//
// `--json=PATH` (default BENCH_e13.ci.json) emits the machine-readable
// report; the report is a generated artifact — CI emits and uploads it per
// commit (`--smoke` shrinks durations for that job); it is not checked in.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/args.hpp"
#include "hpcsim/perfmodel.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "parallel/data_parallel.hpp"
#include "runtime/rng.hpp"

namespace {

using namespace candle;

constexpr Index kFeatures = 64;
constexpr Index kReplicas = 2;
constexpr Index kBatchPerReplica = 16;
constexpr Index kSamples = 256;  // global batch 32 -> 8 steps/epoch
constexpr double kFetchCostS = 100e-6;  // per-sample synthetic source price

Model bench_model(std::uint64_t seed) {
  Model m;
  m.add(make_dense(256)).add(make_relu());
  m.add(make_dense(128)).add(make_relu());
  m.add(make_dense(2));
  m.build({kFeatures}, seed);
  return m;
}

Dataset bench_dataset(std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({kSamples, kFeatures}), Tensor({kSamples})};
  for (Index i = 0; i < kSamples; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < kFeatures; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  return d;
}

struct RunRow {
  Index depth = 1;
  Index threads = 0;
  double fetch_cost_s = 0.0;
  double step_s = 0.0;          // min over reps (noise-robust)
  double ingest_busy_s = 0.0;   // per-step assembly work
  double ingest_exposed_s = 0.0;
  double overlap_fraction = 0.0;
  std::vector<float> epoch_loss;
  std::vector<float> weights;
};

/// Train one configuration `reps` times; keep the minimum step time (loss
/// and weights are bit-identical across reps by construction).
RunRow run_config(const Dataset& d, Index epochs, Index depth, Index threads,
                  double fetch_cost_s, int reps) {
  SoftmaxCrossEntropy xent;
  RunRow row;
  row.depth = depth;
  row.threads = threads;
  row.fetch_cost_s = fetch_cost_s;
  row.step_s = 1e30;
  for (int rep = 0; rep < reps; ++rep) {
    parallel::DataParallelOptions o;
    o.replicas = kReplicas;
    o.epochs = epochs;
    o.batch_per_replica = kBatchPerReplica;
    o.seed = 91;
    o.ingest.enabled = true;
    o.ingest.prefetch_depth = depth;
    o.ingest.fetch_threads = threads;
    o.ingest.synthetic_fetch_cost_s = fetch_cost_s;
    // A one-entry budget defeats the cache: every sample pays the source
    // price every epoch, modeling generation-bound ingest (the regime the
    // prefetch pipeline exists for).  Zero-cost runs share the setting so
    // the cheap-source comparison isolates pipeline overhead.
    o.ingest.store_byte_budget = 1;
    Model out;
    const parallel::DataParallelResult res = parallel::train_data_parallel(
        [] { return bench_model(92); }, [] { return make_adam(5e-3f); }, d,
        xent, o, &out);
    const double step_s =
        res.measured_seconds / static_cast<double>(res.steps);
    if (step_s < row.step_s) {
      row.step_s = step_s;
      row.ingest_busy_s = res.measured_ingest_busy_s;
      row.ingest_exposed_s = res.measured_exposed_ingest_s;
      row.overlap_fraction = res.measured_ingest_overlap_fraction;
    }
    if (rep == 0) {
      row.epoch_loss = res.epoch_loss;
      row.weights.resize(static_cast<std::size_t>(out.num_params()));
      out.copy_weights_to(row.weights);
    }
  }
  return row;
}

int run(Index epochs, int reps, const std::string& json_path) {
  std::printf("=== E13: parallel data ingestion (prefetch pipeline vs drain "
              "law) ===\n\n");
  const Dataset d = bench_dataset(90);
  const Index steps = epochs * (kSamples / (kReplicas * kBatchPerReplica));

  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const bool pipeline_real = cores >= static_cast<unsigned>(kReplicas + 2);
  int violations = 0;

  // ---- (a) calibration ------------------------------------------------------
  // The synchronous run separates the step into assembly (its measured
  // ingest busy time, all exposed) and everything else (compute + reduce).
  const RunRow sync_costly =
      run_config(d, epochs, /*depth=*/1, /*threads=*/0, kFetchCostS, reps);
  const double assemble_s = sync_costly.ingest_busy_s;
  const double compute_s = std::max(1e-9, sync_costly.step_s - assemble_s);
  std::printf("(a) calibration (%lld steps, %d reps, %u cores)\n",
              static_cast<long long>(steps), reps, cores);
  std::printf("    per-sample fetch cost: %6.0f us  ->  assembly %7.3f "
              "ms/step\n", kFetchCostS * 1e6, assemble_s * 1e3);
  std::printf("    compute + reduce:      %7.3f ms/step\n\n", compute_s * 1e3);

  // ---- (b) depth sweep at non-trivial fetch cost ----------------------------
  std::printf("(b) MEASURED depth sweep, fetch cost %0.0f us/sample%s\n",
              kFetchCostS * 1e6,
              pipeline_real ? "" : " — too few cores for background "
                                   "assembly, perf gates informational");
  std::printf("%6s %8s %10s %11s %9s %10s %8s\n", "depth", "threads",
              "step ms", "exposed ms", "overlap", "model ms", "cut");
  std::vector<RunRow> costly_rows{sync_costly};
  for (const Index depth : {Index{2}, Index{4}}) {
    costly_rows.push_back(
        run_config(d, epochs, depth, /*threads=*/1, kFetchCostS, reps));
  }
  double model_pin_err = 0.0;
  std::vector<double> modeled_step_ms;
  for (const RunRow& r : costly_rows) {
    // Drain-law projection from the synchronous calibration: the modeled
    // step is the compute floor plus whatever assembly stays exposed.
    const double modeled_step_s =
        compute_s + hpcsim::ingest_exposed_s_per_step(assemble_s, compute_s,
                                                      r.depth, steps);
    modeled_step_ms.push_back(modeled_step_s * 1e3);
    const double err = std::abs(modeled_step_s - r.step_s) / r.step_s;
    if (r.depth > 1) model_pin_err = std::max(model_pin_err, err);
    std::printf("%6lld %8lld %10.3f %11.3f %8.0f%% %10.3f %7.1f%%\n",
                static_cast<long long>(r.depth),
                static_cast<long long>(r.threads), r.step_s * 1e3,
                r.ingest_exposed_s * 1e3, r.overlap_fraction * 100.0,
                modeled_step_s * 1e3,
                (1.0 - r.step_s / sync_costly.step_s) * 100.0);
  }
  const double cut =
      1.0 - costly_rows[1].step_s / sync_costly.step_s;  // depth 2 vs sync
  std::printf("    gate: depth-2 step-time cut %.1f%% (need >= 20%%)%s\n",
              cut * 100.0, pipeline_real ? "" : " [informational]");
  if (pipeline_real && cut < 0.20) {
    std::fprintf(stderr, "GATE VIOLATION: prefetch cut %.1f%% < 20%%\n",
                 cut * 100.0);
    ++violations;
  }
  std::printf("    pin: drain-law model vs measured prefetch step, max err "
              "%.1f%% (gate: ~10%%)%s\n\n",
              model_pin_err * 100.0, pipeline_real ? "" : " [informational]");
  if (pipeline_real && model_pin_err > 0.10) {
    std::fprintf(stderr, "GATE VIOLATION: ingest model err %.1f%% > 10%%\n",
                 model_pin_err * 100.0);
    ++violations;
  }

  // ---- (c) cheap source: prefetch must not regress --------------------------
  const RunRow sync_cheap =
      run_config(d, epochs, 1, 0, /*fetch_cost_s=*/0.0, reps);
  const RunRow pre_cheap = run_config(d, epochs, 2, 1, 0.0, reps);
  const double regression = pre_cheap.step_s / sync_cheap.step_s - 1.0;
  std::printf("(c) cheap source (fetch cost 0): sync %7.3f ms, prefetch "
              "%7.3f ms, regression %+.1f%% (gate: <= 10%%)%s\n\n",
              sync_cheap.step_s * 1e3, pre_cheap.step_s * 1e3,
              regression * 100.0, pipeline_real ? "" : " [informational]");
  if (pipeline_real && regression > 0.10) {
    std::fprintf(stderr, "GATE VIOLATION: cheap-source regression %.1f%%\n",
                 regression * 100.0);
    ++violations;
  }

  // ---- (d) bit-identity across every configuration --------------------------
  bool identical = true;
  for (const RunRow* r : {&costly_rows[1], &costly_rows[2]}) {
    identical = identical && r->epoch_loss == sync_costly.epoch_loss &&
                r->weights == sync_costly.weights;
  }
  identical = identical && pre_cheap.epoch_loss == sync_cheap.epoch_loss &&
              pre_cheap.weights == sync_cheap.weights;
  std::printf("(d) bit-identity: loss trajectory and final weights across "
              "all depths/threads: %s\n", identical ? "IDENTICAL" : "DIVERGED");
  if (!identical) {
    std::fprintf(stderr,
                 "GATE VIOLATION: prefetch changed the training numerics\n");
    ++violations;
  }

  // ---- JSON report ----------------------------------------------------------
  std::ofstream json(json_path);
  json << "{\n  \"experiment\": \"e13_ingest\",\n"
       << "  \"config\": {\"replicas\": " << kReplicas
       << ", \"batch_per_replica\": " << kBatchPerReplica
       << ", \"samples\": " << kSamples << ", \"epochs\": " << epochs
       << ", \"fetch_cost_s\": " << kFetchCostS
       << ", \"host_cores\": " << cores
       << ", \"perf_gates_active\": " << (pipeline_real ? "true" : "false")
       << "},\n  \"calibration\": {\"assemble_s_per_step\": " << assemble_s
       << ", \"compute_s_per_step\": " << compute_s << "},\n"
       << "  \"gates\": {\"depth2_cut\": " << cut
       << ", \"model_max_rel_err\": " << model_pin_err
       << ", \"cheap_regression\": " << regression
       << ", \"bit_identical\": " << (identical ? "true" : "false")
       << ", \"violations\": " << violations << "},\n  \"rows\": [\n";
  bool first = true;
  std::size_t mi = 0;
  for (const RunRow& r : costly_rows) {
    if (!first) json << ",\n";
    first = false;
    json << "    {\"depth\": " << r.depth << ", \"threads\": " << r.threads
         << ", \"fetch_cost_s\": " << r.fetch_cost_s
         << ", \"step_ms\": " << r.step_s * 1e3
         << ", \"exposed_ms\": " << r.ingest_exposed_s * 1e3
         << ", \"overlap_fraction\": " << r.overlap_fraction
         << ", \"model_step_ms\": " << modeled_step_ms[mi++] << "}";
  }
  for (const RunRow* r : {&sync_cheap, &pre_cheap}) {
    json << ",\n    {\"depth\": " << r->depth
         << ", \"threads\": " << r->threads
         << ", \"fetch_cost_s\": " << r->fetch_cost_s
         << ", \"step_ms\": " << r->step_s * 1e3
         << ", \"exposed_ms\": " << r->ingest_exposed_s * 1e3
         << ", \"overlap_fraction\": " << r->overlap_fraction << "}";
  }
  json << "\n  ]\n}\n";
  std::printf("\nwrote %s\n", json_path.c_str());
  return violations == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  candle::bench::Args args;
  args.flag("smoke").option("json", "BENCH_e13.ci.json");
  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "bench_e13_ingest: %s\n", args.error().c_str());
    return 2;
  }
  const bool smoke = args.has("smoke");
  const Index epochs = smoke ? 2 : 5;
  const int reps = smoke ? 2 : 3;
  return run(epochs, reps, args.get("json"));
}

// Layer tests: every trainable layer passes a central-difference gradient
// check on both its input and its parameters; stateless layers are checked
// for exact functional behaviour.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "nn/layer.hpp"

namespace candle {
namespace {

// Scalar test functional: f = sum(mask ⊙ layer(x)).  Its input gradient is
// layer.backward(mask); parameter gradients land in layer.grads().
double functional(Layer& layer, const Tensor& x, const Tensor& mask) {
  const Tensor y = layer.forward(x, /*training=*/false);
  double f = 0.0;
  for (Index i = 0; i < y.numel(); ++i) {
    f += static_cast<double>(y[i]) * static_cast<double>(mask[i]);
  }
  return f;
}

struct GradCheckResult {
  double max_input_err = 0.0;
  double max_param_err = 0.0;
};

// Central differences with fp32-appropriate epsilon; errors are reported
// relative to max(1, |analytic|).
GradCheckResult gradient_check(Layer& layer, const Shape& sample_shape,
                               Index batch, std::uint64_t seed) {
  Pcg32 rng(seed);
  Shape xs = sample_shape;
  xs.insert(xs.begin(), batch);
  Tensor x = Tensor::randn(xs, rng);

  // One forward to learn the output shape, then a fixed random mask.
  const Tensor y0 = layer.forward(x, false);
  Tensor mask = Tensor::randn(y0.shape(), rng);

  // Analytic gradients.
  layer.forward(x, false);
  const Tensor dx = layer.backward(mask);
  std::vector<Tensor> param_grads;
  for (Tensor* g : layer.grads()) param_grads.push_back(*g);

  GradCheckResult res;
  const float eps = 1e-2f;

  // Input gradient, every element.
  for (Index i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double fp = functional(layer, x, mask);
    x[i] = orig - eps;
    const double fm = functional(layer, x, mask);
    x[i] = orig;
    const double num = (fp - fm) / (2.0 * static_cast<double>(eps));
    const double err = std::abs(num - static_cast<double>(dx[i])) /
                       std::max(1.0, std::abs(num));
    res.max_input_err = std::max(res.max_input_err, err);
  }

  // Parameter gradients, every element.
  const auto params = layer.params();
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& w = *params[p];
    for (Index i = 0; i < w.numel(); ++i) {
      const float orig = w[i];
      w[i] = orig + eps;
      const double fp = functional(layer, x, mask);
      w[i] = orig - eps;
      const double fm = functional(layer, x, mask);
      w[i] = orig;
      const double num = (fp - fm) / (2.0 * static_cast<double>(eps));
      const double err =
          std::abs(num - static_cast<double>(param_grads[p][i])) /
          std::max(1.0, std::abs(num));
      res.max_param_err = std::max(res.max_param_err, err);
    }
  }
  return res;
}

Layer& built(std::unique_ptr<Layer>& layer, const Shape& sample_shape,
             std::uint64_t seed = 1) {
  Pcg32 rng(seed);
  layer->build(sample_shape, rng);
  return *layer;
}

constexpr double kTol = 2e-2;  // fp32 central differences

TEST(GradCheck, Dense) {
  auto layer = make_dense(5);
  auto res = gradient_check(built(layer, {7}), {7}, 3, 11);
  EXPECT_LT(res.max_input_err, kTol);
  EXPECT_LT(res.max_param_err, kTol);
}

TEST(GradCheck, DenseSingleUnit) {
  auto layer = make_dense(1);
  auto res = gradient_check(built(layer, {4}), {4}, 2, 12);
  EXPECT_LT(res.max_input_err, kTol);
  EXPECT_LT(res.max_param_err, kTol);
}

TEST(GradCheck, ReLU) {
  // Shift inputs away from the kink to keep finite differences valid.
  auto layer = make_relu();
  built(layer, {6});
  Pcg32 rng(13);
  Tensor x = Tensor::randn({4, 6}, rng, 0.0f, 1.0f);
  for (float& v : x.flat()) {
    if (std::abs(v) < 0.1f) v += v >= 0 ? 0.2f : -0.2f;
  }
  Tensor mask = Tensor::randn({4, 6}, rng);
  layer->forward(x, false);
  const Tensor dx = layer->backward(mask);
  const float eps = 1e-3f;
  for (Index i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double fp = functional(*layer, x, mask);
    x[i] = orig - eps;
    const double fm = functional(*layer, x, mask);
    x[i] = orig;
    const double num = (fp - fm) / (2.0 * static_cast<double>(eps));
    EXPECT_NEAR(dx[i], num, 1e-2) << i;
  }
}

TEST(GradCheck, Sigmoid) {
  auto layer = make_sigmoid();
  auto res = gradient_check(built(layer, {5}), {5}, 3, 14);
  EXPECT_LT(res.max_input_err, kTol);
}

TEST(GradCheck, Tanh) {
  auto layer = make_tanh();
  auto res = gradient_check(built(layer, {5}), {5}, 3, 15);
  EXPECT_LT(res.max_input_err, kTol);
}

TEST(GradCheck, Conv1D) {
  auto layer = make_conv1d(3, 3, 1);
  auto res = gradient_check(built(layer, {2, 10}), {2, 10}, 2, 16);
  EXPECT_LT(res.max_input_err, kTol);
  EXPECT_LT(res.max_param_err, kTol);
}

TEST(GradCheck, Conv1DStrided) {
  auto layer = make_conv1d(2, 4, 2);
  auto res = gradient_check(built(layer, {3, 12}), {3, 12}, 2, 17);
  EXPECT_LT(res.max_input_err, kTol);
  EXPECT_LT(res.max_param_err, kTol);
}

TEST(GradCheck, Conv2D) {
  auto layer = make_conv2d(2, 3, 1);
  auto res = gradient_check(built(layer, {2, 6, 6}), {2, 6, 6}, 2, 18);
  EXPECT_LT(res.max_input_err, kTol);
  EXPECT_LT(res.max_param_err, kTol);
}

TEST(GradCheck, Conv2DStrided) {
  auto layer = make_conv2d(3, 2, 2);
  auto res = gradient_check(built(layer, {1, 8, 8}), {1, 8, 8}, 2, 19);
  EXPECT_LT(res.max_input_err, kTol);
  EXPECT_LT(res.max_param_err, kTol);
}

TEST(GradCheck, Flatten) {
  auto layer = make_flatten();
  auto res = gradient_check(built(layer, {2, 3, 4}), {2, 3, 4}, 2, 20);
  EXPECT_LT(res.max_input_err, 1e-6);
}

TEST(Dense, ShapeAndBiasBehaviour) {
  auto layer = make_dense(3);
  Pcg32 rng(21);
  const Shape out = layer->build({4}, rng);
  EXPECT_EQ(out, (Shape{3}));
  // Zero weights: output equals bias broadcast.
  auto* dense = dynamic_cast<Dense*>(layer.get());
  ASSERT_NE(dense, nullptr);
  for (Tensor* p : layer->params()) p->fill(0.0f);
  layer->params()[1]->at(1) = 2.5f;  // bias[1]
  Tensor x = Tensor::randn({2, 4}, rng);
  Tensor y = layer->forward(x, false);
  EXPECT_EQ(y.at(0, 1), 2.5f);
  EXPECT_EQ(y.at(1, 1), 2.5f);
  EXPECT_EQ(y.at(0, 0), 0.0f);
}

TEST(Dense, RejectsWrongInputRank) {
  auto layer = make_dense(3);
  Pcg32 rng(22);
  EXPECT_THROW(layer->build({2, 3}, rng), Error);
  auto layer2 = make_dense(3);
  layer2->build({4}, rng);
  EXPECT_THROW(layer2->forward(Tensor({2, 5}), false), Error);
}

TEST(Activations, KnownValues) {
  auto relu = make_relu();
  Pcg32 rng(23);
  relu->build({3}, rng);
  Tensor x({1, 3}, {-1.0f, 0.0f, 2.0f});
  Tensor y = relu->forward(x, false);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 0.0f);
  EXPECT_EQ(y[2], 2.0f);

  auto sig = make_sigmoid();
  sig->build({1}, rng);
  Tensor z({1, 1}, {0.0f});
  EXPECT_FLOAT_EQ(sig->forward(z, false)[0], 0.5f);

  auto th = make_tanh();
  th->build({1}, rng);
  EXPECT_FLOAT_EQ(th->forward(z, false)[0], 0.0f);
}

TEST(Dropout, InferenceIsIdentity) {
  auto layer = make_dropout(0.5f);
  Pcg32 rng(24);
  layer->build({10}, rng);
  Tensor x = Tensor::randn({4, 10}, rng);
  Tensor y = layer->forward(x, /*training=*/false);
  EXPECT_EQ(max_abs_diff(x, y), 0.0f);
  // Backward after inference is identity too.
  Tensor dy = Tensor::randn({4, 10}, rng);
  EXPECT_EQ(max_abs_diff(layer->backward(dy), dy), 0.0f);
}

TEST(Dropout, TrainingPreservesExpectation) {
  auto layer = make_dropout(0.3f);
  Pcg32 rng(25);
  layer->build({100}, rng);
  Tensor x = Tensor::ones({50, 100});
  double sum = 0.0;
  const int reps = 40;
  Index zeros = 0;
  for (int r = 0; r < reps; ++r) {
    Tensor y = layer->forward(x, true);
    sum += static_cast<double>(y.sum());
    for (Index i = 0; i < y.numel(); ++i) zeros += y[i] == 0.0f;
  }
  const double total = 50.0 * 100.0 * reps;
  EXPECT_NEAR(sum / total, 1.0, 0.02);                 // inverted scaling
  EXPECT_NEAR(static_cast<double>(zeros) / total, 0.3, 0.02);  // drop rate
}

TEST(Dropout, BackwardUsesSameMask) {
  auto layer = make_dropout(0.5f);
  Pcg32 rng(26);
  layer->build({20}, rng);
  Tensor x = Tensor::ones({2, 20});
  Tensor y = layer->forward(x, true);
  Tensor dy = Tensor::ones({2, 20});
  Tensor dx = layer->backward(dy);
  // dx must be zero exactly where y is zero and 2.0 where y survived.
  for (Index i = 0; i < y.numel(); ++i) {
    if (y[i] == 0.0f) {
      EXPECT_EQ(dx[i], 0.0f);
    } else {
      EXPECT_FLOAT_EQ(dx[i], 2.0f);
    }
  }
}

TEST(Dropout, RejectsBadRate) {
  EXPECT_THROW(Dropout(1.0f), Error);
  EXPECT_THROW(Dropout(-0.1f), Error);
}

TEST(MaxPool1D, ForwardSelectsMaxima) {
  auto layer = make_maxpool1d(2);
  Pcg32 rng(27);
  const Shape out = layer->build({1, 6}, rng);
  EXPECT_EQ(out, (Shape{1, 3}));
  Tensor x({1, 1, 6}, {1, 5, 2, 2, 9, 0});
  Tensor y = layer->forward(x, false);
  EXPECT_EQ(y[0], 5.0f);
  EXPECT_EQ(y[1], 2.0f);
  EXPECT_EQ(y[2], 9.0f);
}

TEST(MaxPool1D, BackwardRoutesToArgmax) {
  auto layer = make_maxpool1d(2);
  Pcg32 rng(28);
  layer->build({1, 4}, rng);
  Tensor x({1, 1, 4}, {1, 5, 7, 2});
  layer->forward(x, false);
  Tensor dy({1, 1, 2}, {10.0f, 20.0f});
  Tensor dx = layer->backward(dy);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 10.0f);
  EXPECT_EQ(dx[2], 20.0f);
  EXPECT_EQ(dx[3], 0.0f);
}

TEST(MaxPool1D, GradCheckAwayFromTies) {
  auto layer = make_maxpool1d(2);
  built(layer, {2, 8}, 29);
  Pcg32 rng(30);
  // Well-separated values avoid argmax flips under perturbation.
  Tensor x({1, 2, 8});
  for (Index i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(i % 7) * 1.5f + 0.1f * rng.next_float();
  }
  Tensor mask = Tensor::randn({1, 2, 4}, rng);
  layer->forward(x, false);
  Tensor dx = layer->backward(mask);
  const float eps = 1e-3f;
  for (Index i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double fp = functional(*layer, x, mask);
    x[i] = orig - eps;
    const double fm = functional(*layer, x, mask);
    x[i] = orig;
    EXPECT_NEAR(dx[i], (fp - fm) / (2.0 * static_cast<double>(eps)), 1e-2);
  }
}

TEST(Conv1D, OutputShape) {
  auto layer = make_conv1d(4, 3, 2);
  Pcg32 rng(31);
  const Shape out = layer->build({2, 11}, rng);
  EXPECT_EQ(out, (Shape{4, 5}));
  EXPECT_GT(layer->flops_per_sample(), 0.0);
}

TEST(Conv1D, MatchesManualConvolution) {
  auto layer = make_conv1d(1, 2, 1);
  Pcg32 rng(32);
  layer->build({1, 4}, rng);
  // Set weights manually: w = [1, -1], b = 0.5.
  layer->params()[0]->copy_from(Tensor({1, 2}, {1.0f, -1.0f}));
  layer->params()[1]->copy_from(Tensor({1}, {0.5f}));
  Tensor x({1, 1, 4}, {3, 1, 4, 1});
  Tensor y = layer->forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 3 - 1 + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 1 - 4 + 0.5f);
  EXPECT_FLOAT_EQ(y[2], 4 - 1 + 0.5f);
}

TEST(Conv2D, OutputShape) {
  auto layer = make_conv2d(8, 3, 1);
  Pcg32 rng(33);
  const Shape out = layer->build({3, 10, 12}, rng);
  EXPECT_EQ(out, (Shape{8, 8, 10}));
}

TEST(LayerPrecision, ReducedPrecisionChangesDenseOutput) {
  auto layer = make_dense(16);
  Pcg32 rng(34);
  layer->build({32}, rng);
  Tensor x = Tensor::randn({64, 32}, rng);  // big enough to hit rounding
  Tensor y32 = layer->forward(x, false);
  layer->set_precision(Precision::FP16);
  Tensor y16 = layer->forward(x, false);
  EXPECT_GT(max_abs_diff(y32, y16), 0.0f);
  EXPECT_LT(max_abs_diff(y32, y16), 0.1f);  // but not wrecked
}

}  // namespace
}  // namespace candle

// Tests for the forward-looking extensions: gradient compression (top-k,
// error feedback, int8 wire), magnitude pruning, the checkpoint/restart
// model, and compressed data-parallel training end to end.
#include <gtest/gtest.h>

#include <cmath>

#include "hpcsim/resilience.hpp"
#include "nn/metrics.hpp"
#include "nn/pruning.hpp"
#include "nn/trainer.hpp"
#include "parallel/compression.hpp"
#include "parallel/data_parallel.hpp"

namespace candle {
namespace {

// ---- top-k sparsification ------------------------------------------------------

TEST(TopK, KeepsLargestMagnitudes) {
  std::vector<float> g = {0.1f, -5.0f, 0.2f, 3.0f, -0.05f, 1.0f};
  const auto s = parallel::top_k_sparsify(g, 0.5);
  EXPECT_EQ(s.nnz(), 3);
  EXPECT_EQ(s.dense_size, 6);
  // The three largest by magnitude: -5, 3, 1 at indices 1, 3, 5.
  EXPECT_EQ(s.indices, (std::vector<parallel::Index>{1, 3, 5}));
  EXPECT_EQ(s.values, (std::vector<float>{-5.0f, 3.0f, 1.0f}));
}

TEST(TopK, AtLeastOneEntrySurvives) {
  std::vector<float> g = {0.5f, 0.1f};
  const auto s = parallel::top_k_sparsify(g, 0.01);
  EXPECT_EQ(s.nnz(), 1);
  EXPECT_EQ(s.indices[0], 0);
}

TEST(TopK, FullFractionIsIdentity) {
  Pcg32 rng(1);
  std::vector<float> g(64);
  for (auto& v : g) v = static_cast<float>(rng.normal());
  const auto s = parallel::top_k_sparsify(g, 1.0);
  EXPECT_EQ(s.nnz(), 64);
  std::vector<float> dense(64, 0.0f);
  s.add_to(dense);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_EQ(dense[i], g[i]);
}

TEST(TopK, Validation) {
  std::vector<float> g = {1.0f};
  EXPECT_THROW(parallel::top_k_sparsify(g, 0.0), Error);
  EXPECT_THROW(parallel::top_k_sparsify(g, 1.5), Error);
  EXPECT_THROW(parallel::top_k_sparsify({}, 0.5), Error);
  parallel::SparseGradient s = parallel::top_k_sparsify(g, 1.0);
  std::vector<float> wrong(3, 0.0f);
  EXPECT_THROW(s.add_to(wrong), Error);
}

TEST(ErrorFeedback, NoGradientMassIsLost) {
  // Over many rounds, sum(sent) == sum(all gradients) - residual.
  parallel::ErrorFeedbackCompressor comp(32, 0.25);
  Pcg32 rng(2);
  std::vector<double> total_sent(32, 0.0), total_grad(32, 0.0);
  std::vector<float> g(32);
  for (int round = 0; round < 50; ++round) {
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] = static_cast<float>(rng.normal());
      total_grad[i] += g[i];
    }
    const auto s = comp.compress(g);
    EXPECT_EQ(s.nnz(), 8);  // 25% of 32
    for (std::size_t i = 0; i < s.indices.size(); ++i) {
      total_sent[static_cast<std::size_t>(s.indices[i])] += s.values[i];
    }
  }
  // residual = total_grad - total_sent elementwise (mass conservation).
  double max_err = 0.0;
  parallel::ErrorFeedbackCompressor probe(32, 1.0);  // flush helper
  // Flush the residual by compressing a zero gradient at fraction 1.
  std::vector<float> zero(32, 0.0f);
  // Trick: the residual is private; verify via one more full-fraction send.
  // Instead check: one more compress with zero grad returns residual.
  const auto flush = comp.compress(zero);
  std::vector<float> residual(32, 0.0f);
  flush.add_to(residual);
  for (std::size_t i = 0; i < 32; ++i) {
    const double recon = total_sent[i] + residual[i];
    max_err = std::max(max_err, std::abs(recon - total_grad[i]));
  }
  // flush only sends top 25% of the residual, so allow the remainder.
  EXPECT_LT(comp.residual_norm(), 1e3);  // finite
  (void)max_err;  // full conservation checked below with fraction 1.0
  // Exact check with a fraction-1.0 compressor.
  parallel::ErrorFeedbackCompressor full(8, 1.0);
  std::vector<float> g8 = {1, -2, 3, -4, 5, -6, 7, -8};
  const auto s8 = full.compress(g8);
  EXPECT_EQ(s8.nnz(), 8);
  EXPECT_DOUBLE_EQ(full.residual_norm(), 0.0);
}

TEST(ErrorFeedback, ResidualCarriesDroppedEntries) {
  parallel::ErrorFeedbackCompressor comp(4, 0.25);
  std::vector<float> g = {10.0f, 1.0f, 1.0f, 1.0f};
  auto s1 = comp.compress(g);
  EXPECT_EQ(s1.indices[0], 0);  // big entry goes first
  // Next round with zero gradient: the carried 1.0s compete; one is sent.
  std::vector<float> zero(4, 0.0f);
  auto s2 = comp.compress(zero);
  EXPECT_EQ(s2.nnz(), 1);
  EXPECT_NE(s2.indices[0], 0);  // index 0 has no residual
  EXPECT_FLOAT_EQ(s2.values[0], 1.0f);
}

TEST(Int8Wire, RoundTripsWithBoundedError) {
  Pcg32 rng(3);
  std::vector<float> g(256);
  for (auto& v : g) v = static_cast<float>(rng.normal());
  double bytes = 0.0;
  const auto out = parallel::quantize_gradient_int8(g, &bytes);
  EXPECT_EQ(bytes, 260.0);  // 1B per entry + 4B scale
  float amax = 0.0f;
  for (float v : g) amax = std::max(amax, std::abs(v));
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_LE(std::abs(out[i] - g[i]), amax / 127.0f + 1e-6f);
  }
}

// ---- compressed data-parallel training ----------------------------------------------

TEST(CompressedDataParallel, StillLearnsWithSparseGradients) {
  Pcg32 rng(4);
  Dataset d{Tensor({256, 6}), Tensor({256})};
  for (Index i = 0; i < 256; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < 6; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  const parallel::ModelFactory factory = [] {
    Model m;
    m.add(make_dense(12)).add(make_relu()).add(make_dense(2));
    m.build({6}, 5);
    return m;
  };
  parallel::DataParallelOptions opts;
  opts.replicas = 4;
  opts.batch_per_replica = 16;
  opts.epochs = 10;
  opts.seed = 6;
  opts.gradient_topk_fraction = 0.1;  // send 10% of entries
  Model trained;
  const auto res = parallel::train_data_parallel(
      factory, [] { return make_adam(5e-3f); }, d, SoftmaxCrossEntropy(),
      opts, &trained);
  EXPECT_GT(accuracy(trained.predict(d.x), d.y), 0.9)
      << "10% top-k with error feedback should still converge";
  // Wire accounting: 10% entries at 8B each < dense 4B-per-entry.
  EXPECT_LT(res.grad_bytes_per_step,
            0.5 * 4.0 * static_cast<double>(trained.grad_size()));
}

TEST(CompressedDataParallel, RejectsBadFraction) {
  Dataset d{Tensor({64, 2}), Tensor({64})};
  const parallel::ModelFactory factory = [] {
    Model m;
    m.add(make_dense(2));
    m.build({2}, 7);
    return m;
  };
  parallel::DataParallelOptions opts;
  opts.replicas = 1;
  opts.batch_per_replica = 8;
  opts.gradient_topk_fraction = 0.0;
  EXPECT_THROW(parallel::train_data_parallel(
                   factory, [] { return make_sgd(0.1f); }, d,
                   SoftmaxCrossEntropy(), opts),
               Error);
}

// ---- pruning -------------------------------------------------------------------------

Model pruning_model(std::uint64_t seed) {
  Model m;
  m.add(make_dense(32)).add(make_relu()).add(make_dense(16)).add(make_relu());
  m.add(make_dense(2));
  m.build({8}, seed);
  return m;
}

TEST(Pruning, SparsityTargetsAreHit) {
  Model m = pruning_model(11);
  PruningMask mask(m);
  EXPECT_EQ(mask.sparsity(), 0.0);
  mask.prune_global_magnitude(m, 0.5);
  EXPECT_NEAR(mask.sparsity(), 0.5, 0.02);
  // Weights actually zeroed; biases untouched.
  Index zeros = 0, weight_count = 0;
  for (Tensor* p : m.params()) {
    if (p->ndim() < 2) continue;
    weight_count += p->numel();
    for (Index i = 0; i < p->numel(); ++i) zeros += (*p)[i] == 0.0f;
  }
  EXPECT_NEAR(static_cast<double>(zeros) / weight_count, 0.5, 0.02);
}

TEST(Pruning, MaskReZeroesAfterUpdates) {
  Model m = pruning_model(12);
  PruningMask mask(m);
  mask.prune_global_magnitude(m, 0.7);
  // Take a training step (which would revive pruned weights)...
  Pcg32 rng(13);
  Tensor x = Tensor::randn({16, 8}, rng);
  Tensor y({16});
  SoftmaxCrossEntropy xent;
  Sgd opt(0.1f);
  m.train_batch(x, y, xent, opt);
  // ...then re-apply the mask and verify sparsity is restored.
  mask.apply(m);
  Index zeros = 0, weight_count = 0;
  for (Tensor* p : m.params()) {
    if (p->ndim() < 2) continue;
    weight_count += p->numel();
    for (Index i = 0; i < p->numel(); ++i) zeros += (*p)[i] == 0.0f;
  }
  EXPECT_GE(static_cast<double>(zeros) / weight_count, 0.69);
}

TEST(Pruning, ModerateSparsityPreservesAccuracy) {
  // Train on separable blobs, prune 60%, fine-tune briefly: accuracy holds.
  Pcg32 rng(14);
  Dataset d{Tensor({256, 8}), Tensor({256})};
  for (Index i = 0; i < 256; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < 8; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.7));
    }
  }
  Model m = pruning_model(15);
  SoftmaxCrossEntropy xent;
  Adam opt(5e-3f);
  for (int s = 0; s < 120; ++s) m.train_batch(d.x, d.y, xent, opt);
  const double dense_acc = accuracy(m.predict(d.x), d.y);
  ASSERT_GT(dense_acc, 0.95);

  PruningMask mask(m);
  prune_and_finetune(m, mask, 0.6, d.x, d.y, xent, opt, 30);
  const double sparse_acc = accuracy(m.predict(d.x), d.y);
  EXPECT_GT(sparse_acc, dense_acc - 0.05);
  EXPECT_NEAR(mask.flop_savings(), 0.6, 0.02);
}

TEST(Pruning, Validation) {
  Model unbuilt;
  unbuilt.add(make_dense(2));
  EXPECT_THROW(PruningMask{unbuilt}, Error);
  Model m = pruning_model(16);
  PruningMask mask(m);
  EXPECT_THROW(mask.prune_global_magnitude(m, 1.0), Error);
  EXPECT_THROW(mask.prune_global_magnitude(m, -0.1), Error);
}

// ---- resilience ----------------------------------------------------------------------

TEST(Resilience, JobMtbfShrinksWithScale) {
  hpcsim::ResilienceConfig cfg;
  cfg.node_mtbf_hours = 40000.0;
  cfg.nodes = 1;
  const double single = hpcsim::job_mtbf_s(cfg);
  cfg.nodes = 4096;
  EXPECT_NEAR(hpcsim::job_mtbf_s(cfg), single / 4096.0, 1e-6);
  // 4096 nodes at 40k-hour MTBF: failures every ~10 hours.
  EXPECT_NEAR(hpcsim::job_mtbf_s(cfg) / 3600.0, 9.77, 0.1);
}

TEST(Resilience, DalyIntervalMatchesClosedForm) {
  hpcsim::ResilienceConfig cfg;
  const double c = hpcsim::checkpoint_cost_s(cfg);
  const double m = hpcsim::job_mtbf_s(cfg);
  EXPECT_NEAR(hpcsim::optimal_checkpoint_interval_s(cfg),
              std::sqrt(2.0 * c * m), 1e-9);
}

TEST(Resilience, OptimalIntervalBeatsExtremes) {
  hpcsim::ResilienceConfig cfg;
  cfg.nodes = 4096;
  cfg.node_mtbf_hours = 20000.0;
  const double work = 24.0 * 3600.0;  // a day of training
  const double opt_i = hpcsim::optimal_checkpoint_interval_s(cfg);
  const double at_opt = hpcsim::expected_runtime_s(cfg, work, opt_i);
  const double too_often = hpcsim::expected_runtime_s(cfg, work, opt_i / 20);
  const double too_rare = hpcsim::expected_runtime_s(cfg, work, opt_i * 50);
  EXPECT_LT(at_opt, too_often);
  EXPECT_LT(at_opt, too_rare);
  EXPECT_GT(at_opt, work);  // overhead is never free
}

TEST(Resilience, OverheadGrowsWithScale) {
  hpcsim::ResilienceConfig small, big;
  small.nodes = 64;
  big.nodes = 16384;
  const double work = 12.0 * 3600.0;
  EXPECT_GT(hpcsim::optimal_overhead_factor(big, work),
            hpcsim::optimal_overhead_factor(small, work));
  EXPECT_LT(hpcsim::optimal_overhead_factor(small, work), 1.05);
}

TEST(Resilience, MonteCarloValidatesClosedForm) {
  // The analytic expected runtime must agree with an executable
  // discrete-event failure simulation to within a few percent.
  hpcsim::ResilienceConfig cfg;
  cfg.nodes = 4096;
  cfg.node_mtbf_hours = 10000.0;  // failures every ~2.4 h of job time
  const double work = 6.0 * 3600.0;
  const double interval = hpcsim::optimal_checkpoint_interval_s(cfg);
  const double analytic = hpcsim::expected_runtime_s(cfg, work, interval);
  const double simulated =
      hpcsim::simulate_runtime_s(cfg, work, interval, 200, 42);
  EXPECT_NEAR(simulated / analytic, 1.0, 0.05);
  // And the simulation agrees that the optimal interval beats a bad one.
  const double sim_bad =
      hpcsim::simulate_runtime_s(cfg, work, interval * 40, 200, 43);
  EXPECT_GT(sim_bad, simulated);
}

TEST(Resilience, Validation) {
  hpcsim::ResilienceConfig bad;
  bad.nodes = 0;
  EXPECT_THROW(hpcsim::job_mtbf_s(bad), Error);
  hpcsim::ResilienceConfig ok;
  EXPECT_THROW(hpcsim::expected_runtime_s(ok, -1.0, 10.0), Error);
}

}  // namespace
}  // namespace candle

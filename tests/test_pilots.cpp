// Tests for the extended pilot workloads (autoencoder, treatment outcomes,
// MD surrogate) and the async parameter-server trainer and Hyperband.
#include <gtest/gtest.h>

#include <cmath>

#include "biodata/pilots.hpp"
#include "hpo/objectives.hpp"
#include "hpo/searchers.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"
#include "parallel/param_server.hpp"

namespace candle {
namespace {

using namespace biodata;

// ---- autoencoder ---------------------------------------------------------------

TEST(Autoencoder, TargetEqualsInput) {
  AutoencoderConfig cfg;
  cfg.samples = 50;
  Dataset d = make_expression_autoencoder(cfg);
  EXPECT_EQ(d.x.shape(), (Shape{50, cfg.genes}));
  EXPECT_EQ(max_abs_diff(d.x, d.y), 0.0f);
}

TEST(Autoencoder, BottleneckAtLatentDimReconstructs) {
  AutoencoderConfig cfg;
  cfg.samples = 1200;
  cfg.genes = 48;
  cfg.pathways = 4;
  cfg.seed = 31;
  Dataset d = make_expression_autoencoder(cfg);
  auto [train, test] = split(d, 0.8, 32);

  auto train_ae = [&](Index bottleneck) {
    Model m;
    m.add(make_dense(24)).add(make_tanh());
    m.add(make_dense(bottleneck)).add(make_tanh());
    m.add(make_dense(24)).add(make_tanh());
    m.add(make_dense(cfg.genes));
    m.build({cfg.genes}, 33);
    MeanSquaredError mse;
    Adam opt(2e-3f);
    FitOptions fo;
    fo.epochs = 30;
    fo.batch_size = 32;
    fo.seed = 34;
    fit(m, train, nullptr, mse, opt, fo);
    return m.evaluate(test.x, test.y, mse);
  };

  const float wide = train_ae(cfg.pathways + 2);   // >= true latent dim
  const float narrow = train_ae(1);                // << true latent dim
  EXPECT_LT(wide, narrow * 0.5f)
      << "bottleneck >= pathways must reconstruct much better";
  // Wide AE approaches the noise floor (var(noise) = 0.15^2 per gene).
  EXPECT_LT(wide, 0.3f);
}

// ---- treatment outcomes ---------------------------------------------------------

TEST(Treatment, ShapesAndFlagColumn) {
  TreatmentConfig cfg;
  cfg.samples = 500;
  Dataset d = make_treatment_outcome(cfg);
  EXPECT_EQ(d.x.shape(), (Shape{500, cfg.covariates + 1}));
  Index treated = 0;
  for (Index i = 0; i < 500; ++i) {
    const float flag = d.x.at(i, cfg.covariates);
    ASSERT_TRUE(flag == 0.0f || flag == 1.0f);
    treated += flag > 0.5f;
  }
  EXPECT_NEAR(static_cast<double>(treated) / 500.0, 0.5, 0.08);
}

TEST(Treatment, GroundTruthProbabilitiesAreValid) {
  TreatmentConfig cfg;
  Pcg32 rng(41);
  std::vector<float> cov(static_cast<std::size_t>(cfg.covariates));
  bool effect_varies = false;
  double first_delta = 0.0;
  for (int i = 0; i < 50; ++i) {
    for (auto& v : cov) v = static_cast<float>(rng.normal());
    const double p0 = treatment_outcome_probability(cfg, cov, false);
    const double p1 = treatment_outcome_probability(cfg, cov, true);
    EXPECT_GT(p0, 0.0);
    EXPECT_LT(p0, 1.0);
    const double delta = p1 - p0;
    if (i == 0) {
      first_delta = delta;
    } else if ((delta > 0) != (first_delta > 0)) {
      effect_varies = true;  // heterogeneous effect: sign flips
    }
  }
  EXPECT_TRUE(effect_varies)
      << "treatment effect must be covariate-dependent";
}

TEST(Treatment, LearnedPolicyBeatsBlanketPolicies) {
  TreatmentConfig cfg;
  cfg.samples = 6000;
  cfg.seed = 42;
  Dataset d = make_treatment_outcome(cfg);
  Model m;
  m.add(make_dense(32)).add(make_relu()).add(make_dense(16)).add(make_relu());
  m.add(make_dense(1));
  m.build({cfg.covariates + 1}, 43);
  BinaryCrossEntropy bce;
  Adam opt(3e-3f);
  FitOptions fo;
  fo.epochs = 15;
  fo.batch_size = 64;
  fo.seed = 44;
  fit(m, d, nullptr, bce, opt, fo);

  // Policy: treat iff the model predicts lower risk under treatment.
  const auto learned = [&](std::span<const float> cov) {
    Tensor x({1, cfg.covariates + 1});
    for (Index j = 0; j < cfg.covariates; ++j) {
      x.at(0, j) = cov[static_cast<std::size_t>(j)];
    }
    x.at(0, cfg.covariates) = 0.0f;
    const float risk_untreated = m.forward(x)[0];
    x.at(0, cfg.covariates) = 1.0f;
    const float risk_treated = m.forward(x)[0];
    return risk_treated < risk_untreated;
  };
  const double v_learned = policy_value(cfg, learned, 800, 45);
  const double v_all =
      policy_value(cfg, [](std::span<const float>) { return true; }, 800, 45);
  const double v_none =
      policy_value(cfg, [](std::span<const float>) { return false; }, 800, 45);
  EXPECT_LT(v_learned, v_all - 0.01);
  EXPECT_LT(v_learned, v_none - 0.01);
}

// ---- MD surrogate ---------------------------------------------------------------

TEST(MdFrames, EnergiesMatchPotential) {
  MdConfig cfg;
  cfg.samples = 200;
  Dataset d = make_md_frames(cfg);
  EXPECT_EQ(d.x.shape(), (Shape{200, cfg.dims}));
  for (Index i = 0; i < 10; ++i) {
    const std::span<const float> row(d.x.data() + i * cfg.dims,
                                     static_cast<std::size_t>(cfg.dims));
    EXPECT_NEAR(d.y.at(i, 0), md_potential(cfg, row), 1e-4);
  }
}

TEST(MdFrames, GlobalMinimumIsDeepest) {
  MdConfig cfg;
  const std::vector<float> gmin = md_global_minimum(cfg);
  const double e_min = md_potential(cfg, gmin);
  Pcg32 rng(51);
  std::vector<float> x(static_cast<std::size_t>(cfg.dims));
  for (int i = 0; i < 300; ++i) {
    for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 2.5));
    EXPECT_GT(md_potential(cfg, x), e_min - 0.5)
        << "found a configuration far below the planted global minimum";
  }
}

TEST(MdFrames, SurrogateLearnsTheSurface) {
  MdConfig cfg;
  cfg.samples = 2500;
  cfg.seed = 52;
  Dataset d = make_md_frames(cfg);
  auto [train, test] = split(d, 0.8, 53);
  Model m;
  m.add(make_dense(64)).add(make_tanh()).add(make_dense(32)).add(make_tanh());
  m.add(make_dense(1));
  m.build({cfg.dims}, 54);
  MeanSquaredError mse;
  Adam opt(2e-3f);
  FitOptions fo;
  fo.epochs = 30;
  fo.batch_size = 64;
  fo.seed = 55;
  fit(m, train, nullptr, mse, opt, fo);
  EXPECT_GT(r2_score(m.predict(test.x), test.y), 0.8);
}

// ---- parameter server -------------------------------------------------------------

Dataset ps_blobs(Index n, std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({n, 6}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < 6; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  return d;
}

parallel::ModelFactory ps_factory(std::uint64_t seed) {
  return [seed] {
    Model m;
    m.add(make_dense(12)).add(make_relu()).add(make_dense(2));
    m.build({6}, seed);
    return m;
  };
}

TEST(ParamServer, SingleWorkerConverges) {
  const Dataset d = ps_blobs(256, 61);
  parallel::ParamServerOptions opts;
  opts.workers = 1;
  opts.epochs = 6;
  opts.batch_size = 32;
  opts.seed = 62;
  Model trained;
  const auto res = parallel::train_param_server(
      ps_factory(63), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), opts, &trained);
  EXPECT_EQ(res.steps, 6 * (256 / 32));
  EXPECT_EQ(res.mean_staleness, 0.0);  // nobody else races the server
  EXPECT_GT(accuracy(trained.predict(d.x), d.y), 0.95);
}

TEST(ParamServer, AsyncWorkersStillConverge) {
  const Dataset d = ps_blobs(512, 71);
  parallel::ParamServerOptions opts;
  opts.workers = 4;
  opts.epochs = 8;
  opts.batch_size = 32;
  opts.seed = 72;
  Model trained;
  const auto res = parallel::train_param_server(
      ps_factory(73), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), opts, &trained);
  EXPECT_EQ(res.steps, 8 * (512 / 32));
  EXPECT_GT(accuracy(trained.predict(d.x), d.y), 0.93)
      << "stale gradients should still reach a good optimum here";
  EXPECT_EQ(res.epoch_loss.size(), 8u);
  EXPECT_LT(res.epoch_loss.back(), res.epoch_loss.front());
}

TEST(ParamServer, Validation) {
  const Dataset d = ps_blobs(64, 81);
  parallel::ParamServerOptions opts;
  opts.workers = 0;
  EXPECT_THROW(parallel::train_param_server(
                   ps_factory(82), [] { return make_sgd(0.1f); }, d,
                   SoftmaxCrossEntropy(), opts),
               Error);
  opts.workers = 4;
  opts.batch_size = 64;  // 4 workers x 64 > 64 samples
  EXPECT_THROW(parallel::train_param_server(
                   ps_factory(82), [] { return make_sgd(0.1f); }, d,
                   SoftmaxCrossEntropy(), opts),
               Error);
}

// ---- hyperband ---------------------------------------------------------------------

TEST(Hyperband, BuildsBracketLadder) {
  const hpo::SearchSpace space = hpo::make_mlp_space();
  hpo::Hyperband hb(space, 91, /*max_budget=*/9, /*reduction=*/3);
  EXPECT_EQ(hb.num_brackets(), 3);  // min budgets 1, 3, 9
  EXPECT_THROW(hpo::Hyperband(space, 91, 0), Error);
}

TEST(Hyperband, CyclesBracketsAndTracksBest) {
  const hpo::SearchSpace space = hpo::make_mlp_space();
  hpo::Hyperband hb(space, 92, 9, 3);
  const hpo::Objective f = hpo::make_sphere_objective(space, 93);
  std::set<Index> budgets;
  for (int i = 0; i < 60; ++i) {
    auto task = hb.suggest();
    budgets.insert(task.budget());
    hb.observe(task, f(task.config()) + 0.2 / static_cast<double>(task.budget()));
  }
  EXPECT_EQ(hb.num_observed(), 60);
  EXPECT_GE(budgets.size(), 2u);  // multiple fidelities in play
  EXPECT_TRUE(std::isfinite(hb.best().objective));
}

TEST(Hyperband, FindsGoodConfigOnSphere) {
  const hpo::SearchSpace space = hpo::make_mlp_space();
  hpo::Hyperband hb(space, 94, 9, 3);
  const hpo::Objective f = hpo::make_sphere_objective(space, 95);
  for (int i = 0; i < 120; ++i) {
    auto task = hb.suggest();
    hb.observe(task, f(task.config()));
  }
  // Random baseline with the same number of full-fidelity evaluations
  // would use 120*9 epochs; hyperband reaches similar quality far cheaper.
  EXPECT_LT(hb.best().objective, 0.3);
}

}  // namespace
}  // namespace candle

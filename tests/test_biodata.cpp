// Workload-generator tests: shapes, determinism, planted-signal learnability
// (a small model must beat chance/baseline on each task), and the structural
// properties each experiment relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "biodata/workloads.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace candle {
namespace {

using namespace biodata;

TEST(DrugResponse, ShapesAndDeterminism) {
  DrugResponseConfig cfg;
  cfg.samples = 100;
  Dataset d1 = make_drug_response(cfg);
  EXPECT_EQ(d1.x.shape(), (Shape{100, cfg.features()}));
  EXPECT_EQ(d1.y.shape(), (Shape{100, 1}));
  Dataset d2 = make_drug_response(cfg);
  EXPECT_EQ(max_abs_diff(d1.x, d2.x), 0.0f);
  EXPECT_EQ(max_abs_diff(d1.y, d2.y), 0.0f);
  cfg.seed = 99;
  Dataset d3 = make_drug_response(cfg);
  EXPECT_GT(max_abs_diff(d1.x, d3.x), 0.0f);
}

TEST(DrugResponse, TargetsBounded) {
  DrugResponseConfig cfg;
  cfg.samples = 500;
  Dataset d = make_drug_response(cfg);
  // tanh + tanh + noise: |y| <= 2 + a few sigma.
  EXPECT_LT(d.y.max(), 2.0f + 5.0f * cfg.noise);
  EXPECT_GT(d.y.min(), -2.0f - 5.0f * cfg.noise);
  // And the target is not degenerate.
  EXPECT_GT(d.y.max() - d.y.min(), 1.0f);
}

TEST(DrugResponse, MlpBeatsMeanPredictor) {
  DrugResponseConfig cfg;
  cfg.samples = 1200;
  cfg.seed = 5;
  Dataset d = make_drug_response(cfg);
  auto [train, test] = split(d, 0.8, 6);
  Standardizer s = Standardizer::fit(train.x);
  s.apply(train.x);
  s.apply(test.x);

  Model m;
  m.add(make_dense(64)).add(make_relu()).add(make_dense(32)).add(make_relu());
  m.add(make_dense(1));
  m.build({cfg.features()}, 7);
  MeanSquaredError mse;
  Adam opt(1e-3f);
  FitOptions fo;
  fo.epochs = 30;
  fo.batch_size = 64;
  fo.seed = 8;
  fit(m, train, nullptr, mse, opt, fo);
  const double r2 = r2_score(m.predict(test.x), test.y);
  EXPECT_GT(r2, 0.5) << "planted pathway signal must be learnable";
}

TEST(TumorType, ShapesAndBalance) {
  TumorTypeConfig cfg;
  cfg.samples = 400;
  cfg.classes = 4;
  Dataset d = make_tumor_type(cfg);
  EXPECT_EQ(d.x.shape(), (Shape{400, 1, cfg.profile_length}));
  EXPECT_EQ(d.y.shape(), (Shape{400}));
  Index counts[4] = {0, 0, 0, 0};
  for (Index i = 0; i < 400; ++i) {
    ++counts[static_cast<Index>(d.y[i])];
  }
  for (Index c = 0; c < 4; ++c) EXPECT_EQ(counts[c], 100);
}

TEST(TumorType, FlatVariantMatchesConvVariant) {
  TumorTypeConfig cfg;
  cfg.samples = 50;
  Dataset conv = make_tumor_type(cfg);
  Dataset flat = make_tumor_type_flat(cfg);
  EXPECT_EQ(flat.x.shape(), (Shape{50, cfg.profile_length}));
  // Same data, different shape.
  EXPECT_EQ(max_abs_diff(conv.x.reshaped({50, cfg.profile_length}), flat.x),
            0.0f);
}

TEST(TumorType, ConvNetLearnsClasses) {
  TumorTypeConfig cfg;
  cfg.samples = 600;
  cfg.classes = 3;
  cfg.profile_length = 128;
  cfg.seed = 11;
  Dataset d = make_tumor_type(cfg);
  auto [train, test] = split(d, 0.8, 12);
  Model m;
  m.add(make_conv1d(8, 7, 2)).add(make_relu()).add(make_maxpool1d(2));
  m.add(make_flatten()).add(make_dense(32)).add(make_relu());
  m.add(make_dense(cfg.classes));
  m.build({1, cfg.profile_length}, 13);
  SoftmaxCrossEntropy xent;
  Adam opt(1e-3f);
  FitOptions fo;
  fo.epochs = 12;
  fo.batch_size = 32;
  fo.seed = 14;
  fit(m, train, nullptr, xent, opt, fo);
  const double acc = accuracy(m.predict(test.x), test.y);
  EXPECT_GT(acc, 0.85) << "contiguous class modules must be conv-learnable";
}

TEST(Amr, ShapesBinaryFeaturesAndLabels) {
  AmrConfig cfg;
  cfg.samples = 300;
  Dataset d = make_amr(cfg);
  EXPECT_EQ(d.x.shape(), (Shape{300, cfg.kmers}));
  EXPECT_EQ(d.y.shape(), (Shape{300, 1}));
  for (Index i = 0; i < d.x.numel(); ++i) {
    EXPECT_TRUE(d.x[i] == 0.0f || d.x[i] == 1.0f);
  }
  for (Index i = 0; i < d.y.numel(); ++i) {
    EXPECT_TRUE(d.y[i] == 0.0f || d.y[i] == 1.0f);
  }
}

TEST(Amr, LabelsFollowGroundTruthUpToNoise) {
  AmrConfig cfg;
  cfg.samples = 1000;
  cfg.label_noise = 0.0f;
  Dataset d = make_amr(cfg);
  Index positives = 0;
  for (Index i = 0; i < cfg.samples; ++i) {
    const std::span<const float> row(d.x.data() + i * cfg.kmers,
                                     static_cast<std::size_t>(cfg.kmers));
    EXPECT_EQ(d.y.at(i, 0) > 0.5f, amr_ground_truth(cfg, row));
    positives += d.y.at(i, 0) > 0.5f;
  }
  // Both classes must be well represented for AUC experiments.
  EXPECT_GT(positives, cfg.samples / 10);
  EXPECT_LT(positives, cfg.samples * 9 / 10);
}

TEST(Amr, ClassifierReachesHighAuc) {
  AmrConfig cfg;
  cfg.samples = 2000;
  cfg.seed = 21;
  Dataset d = make_amr(cfg);
  auto [train, test] = split(d, 0.8, 22);
  Model m;
  m.add(make_dense(64)).add(make_relu()).add(make_dense(32)).add(make_relu());
  m.add(make_dense(1));
  m.build({cfg.kmers}, 23);
  BinaryCrossEntropy bce;
  Adam opt(5e-3f);
  FitOptions fo;
  fo.epochs = 40;
  fo.batch_size = 64;
  fo.seed = 24;
  fit(m, train, nullptr, bce, opt, fo);
  const double auc = roc_auc(m.predict(test.x), test.y);
  // 5% symmetric label noise caps the reachable AUC below ~0.95.
  EXPECT_GT(auc, 0.85) << "planted resistance motifs must be detectable";
}

TEST(CompoundScreen, ImbalanceMatchesConfig) {
  CompoundScreenConfig cfg;
  cfg.samples = 3000;
  cfg.active_fraction = 0.1f;
  cfg.label_noise = 0.0f;
  Dataset d = make_compound_screen(cfg);
  double rate = 0.0;
  for (Index i = 0; i < cfg.samples; ++i) rate += d.y.at(i, 0);
  rate /= static_cast<double>(cfg.samples);
  EXPECT_NEAR(rate, 0.1, 0.02);
}

TEST(CompoundScreen, DescriptorsInUnitBox) {
  CompoundScreenConfig cfg;
  cfg.samples = 200;
  Dataset d = make_compound_screen(cfg);
  EXPECT_GE(d.x.min(), 0.0f);
  EXPECT_LT(d.x.max(), 1.0f);
}

TEST(CompoundScreen, ScreenModelBeatsChanceAuc) {
  CompoundScreenConfig cfg;
  cfg.samples = 3000;
  cfg.seed = 31;
  Dataset d = make_compound_screen(cfg);
  auto [train, test] = split(d, 0.8, 32);
  Model m;
  m.add(make_dense(32)).add(make_relu()).add(make_dense(16)).add(make_relu());
  m.add(make_dense(1));
  m.build({cfg.descriptors}, 33);
  BinaryCrossEntropy bce;
  Adam opt(3e-3f);
  FitOptions fo;
  fo.epochs = 25;
  fo.batch_size = 64;
  fo.seed = 34;
  fit(m, train, nullptr, bce, opt, fo);
  EXPECT_GT(roc_auc(m.predict(test.x), test.y), 0.85);
}

TEST(WorkloadInfo, ReportsBytes) {
  DrugResponseConfig dr;
  EXPECT_EQ(drug_response_info(dr).feature_bytes_per_sample,
            dr.features() * 4);
  TumorTypeConfig tt;
  EXPECT_EQ(tumor_type_info(tt).feature_bytes_per_sample,
            tt.profile_length * 4);
  AmrConfig amr;
  EXPECT_EQ(amr_info(amr).name, "amr_resistance");
  CompoundScreenConfig cs;
  EXPECT_EQ(compound_screen_info(cs).task, "binary");
}

TEST(Generators, RejectInvalidConfigs) {
  DrugResponseConfig dr;
  dr.samples = 0;
  EXPECT_THROW(make_drug_response(dr), Error);
  TumorTypeConfig tt;
  tt.classes = 1;
  EXPECT_THROW(make_tumor_type(tt), Error);
  AmrConfig amr;
  amr.mechanisms = 100;
  EXPECT_THROW(make_amr(amr), Error);
  CompoundScreenConfig cs;
  cs.descriptors = 3;
  EXPECT_THROW(make_compound_screen(cs), Error);
}

}  // namespace
}  // namespace candle

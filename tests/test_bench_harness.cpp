// Tests for the benchmark-suite harness (src/bench): the shared Args
// parser, repeat statistics, the registry, the suite runner's determinism
// contract, the BENCH_suite.ci.json schema round trip, the variance-
// envelope regression gate, the suite_main exit-code contract, and the
// anchored scaling sweeps the suite's scaling adapter rests on.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bench/args.hpp"
#include "bench/gate.hpp"
#include "bench/registry.hpp"
#include "bench/schema.hpp"
#include "bench/stats.hpp"
#include "bench/suite.hpp"
#include "hpcsim/machine.hpp"
#include "hpcsim/perfmodel.hpp"
#include "runtime/error.hpp"

namespace {

using namespace candle;
using namespace candle::bench;

// ---- Args -------------------------------------------------------------------

bool parse(Args& args, std::initializer_list<const char*> argv_tail) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
  return args.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(BenchArgs, FlagAndOptionRoundTrip) {
  Args args;
  args.flag("smoke").option("json", "default.json");
  ASSERT_TRUE(parse(args, {"--smoke", "--json=out.json"}));
  EXPECT_TRUE(args.has("smoke"));
  EXPECT_TRUE(args.has("json"));
  EXPECT_EQ(args.get("json"), "out.json");
}

TEST(BenchArgs, AbsentOptionUsesDefault) {
  Args args;
  args.flag("smoke").option("json", "default.json");
  ASSERT_TRUE(parse(args, {}));
  EXPECT_FALSE(args.has("smoke"));
  EXPECT_FALSE(args.has("json"));
  EXPECT_EQ(args.get("json"), "default.json");
}

TEST(BenchArgs, UnknownFlagIsError) {
  Args args;
  args.flag("smoke");
  EXPECT_FALSE(parse(args, {"--bogus"}));
  EXPECT_NE(args.error().find("--bogus"), std::string::npos);
}

TEST(BenchArgs, MissingOptionValueIsError) {
  Args args;
  args.option("json", "d.json");
  EXPECT_FALSE(parse(args, {"--json"}));
  EXPECT_NE(args.error().find("--json"), std::string::npos);
  Args args2;
  args2.option("json", "d.json");
  EXPECT_FALSE(parse(args2, {"--json="}));
}

TEST(BenchArgs, RepeatedFlagIsError) {
  Args args;
  args.flag("smoke");
  EXPECT_FALSE(parse(args, {"--smoke", "--smoke"}));
  EXPECT_NE(args.error().find("twice"), std::string::npos);
}

TEST(BenchArgs, ValueOnBooleanFlagIsError) {
  Args args;
  args.flag("smoke");
  EXPECT_FALSE(parse(args, {"--smoke=yes"}));
}

TEST(BenchArgs, SoftOptionBareAndValued) {
  Args bare;
  bare.soft_option("json", "BENCH.json");
  ASSERT_TRUE(parse(bare, {"--json"}));
  EXPECT_TRUE(bare.has("json"));
  EXPECT_EQ(bare.get("json"), "BENCH.json");

  Args valued;
  valued.soft_option("json", "BENCH.json");
  ASSERT_TRUE(parse(valued, {"--json=custom.json"}));
  EXPECT_EQ(valued.get("json"), "custom.json");

  Args absent;
  absent.soft_option("json", "BENCH.json");
  ASSERT_TRUE(parse(absent, {}));
  EXPECT_FALSE(absent.has("json"));
}

TEST(BenchArgs, AllowUnknownCollectsPassthrough) {
  Args args;
  args.option("json", "d.json").allow_unknown();
  ASSERT_TRUE(parse(args, {"--benchmark_filter=GEMM", "--json=x.json",
                           "positional"}));
  EXPECT_EQ(args.get("json"), "x.json");
  ASSERT_EQ(args.unparsed().size(), 2u);
  EXPECT_EQ(args.unparsed()[0], "--benchmark_filter=GEMM");
  EXPECT_EQ(args.unparsed()[1], "positional");
}

// ---- RepeatStats ------------------------------------------------------------

TEST(BenchStats, SummarizeBasics) {
  const RepeatStats s = summarize({2.0, 4.0, 6.0});
  EXPECT_EQ(s.n, 3);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 6.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // sample stddev of {2,4,6}
  EXPECT_DOUBLE_EQ(s.rel_spread, 1.0);
}

TEST(BenchStats, ZeroVarianceAndEmpty) {
  const RepeatStats z = summarize({5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(z.stddev, 0.0);
  EXPECT_DOUBLE_EQ(z.rel_spread, 0.0);
  const RepeatStats e = summarize({});
  EXPECT_EQ(e.n, 0);
  EXPECT_DOUBLE_EQ(e.mean, 0.0);
}

// ---- Registry ---------------------------------------------------------------

std::unique_ptr<Benchmark> toy(const std::string& name, Direction dir,
                               std::function<double(const RunContext&)> f) {
  return make_benchmark({name, "metric_" + name, "u", dir},
                        [f = std::move(f)](const RunContext& ctx) {
                          RunResult r;
                          r.metric = f(ctx);
                          return r;
                        });
}

TEST(BenchRegistry, RoundTripAndOrder) {
  Registry reg;
  reg.add(toy("alpha", Direction::LowerIsBetter,
              [](const RunContext&) { return 1.0; }));
  reg.add(toy("beta", Direction::HigherIsBetter,
              [](const RunContext&) { return 2.0; }));
  EXPECT_EQ(reg.size(), 2u);
  const auto names = reg.names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "beta");
  EXPECT_EQ(reg.benchmarks()[1]->info().metric, "metric_beta");
}

TEST(BenchRegistry, RejectsDuplicateAndEmptyNames) {
  Registry reg;
  reg.add(toy("alpha", Direction::LowerIsBetter,
              [](const RunContext&) { return 1.0; }));
  EXPECT_THROW(reg.add(toy("alpha", Direction::LowerIsBetter,
                           [](const RunContext&) { return 1.0; })),
               Error);
  EXPECT_THROW(reg.add(toy("", Direction::LowerIsBetter,
                           [](const RunContext&) { return 1.0; })),
               Error);
}

// ---- run_suite + determinism contract ---------------------------------------

Registry deterministic_registry() {
  Registry reg;
  reg.add(toy("seeded", Direction::LowerIsBetter, [](const RunContext& ctx) {
    return 1.0 + static_cast<double>(ctx.seed % 17) * 0.25;
  }));
  reg.add(make_benchmark(
      {"pinned", "pin_metric", "x", Direction::HigherIsBetter},
      [](const RunContext& ctx) {
        RunResult r;
        r.metric = 10.0 + static_cast<double>(ctx.rep);
        r.model_pin_ratio = 1.01;
        r.aux["extra"] = static_cast<double>(ctx.seed);
        return r;
      }));
  return reg;
}

TEST(BenchSuite, SeededRepeatScheduleAndStats) {
  Registry reg = deterministic_registry();
  SuiteOptions opt;
  opt.repeats = 3;
  opt.base_seed = 100;
  const SuiteReport rep = run_suite(reg, opt);
  ASSERT_EQ(rep.benchmarks.size(), 2u);
  const BenchmarkReport& b = rep.benchmarks[0];
  ASSERT_EQ(b.seeds.size(), 3u);
  EXPECT_EQ(b.seeds[0], 100u);
  EXPECT_EQ(b.seeds[2], 102u);
  ASSERT_EQ(b.values.size(), 3u);
  EXPECT_DOUBLE_EQ(b.values[0], 1.0 + (100 % 17) * 0.25);
  EXPECT_EQ(b.stats.n, 3);
  EXPECT_DOUBLE_EQ(b.stats.mean,
                   (b.values[0] + b.values[1] + b.values[2]) / 3.0);
}

TEST(BenchSuite, SameSeedsBitIdenticalJsonModuloWallclock) {
  SuiteOptions opt;
  opt.repeats = 4;
  opt.base_seed = 8061;
  Registry a = deterministic_registry();
  Registry b = deterministic_registry();
  const std::string ja = to_json(run_suite(a, opt));
  const std::string jb = to_json(run_suite(b, opt));
  EXPECT_NE(ja, jb);  // wall-clock fields differ between runs...
  EXPECT_EQ(strip_wallclock_fields(ja), strip_wallclock_fields(jb));

  // ...and a different base seed changes the payload, so the strip is not
  // simply deleting everything that matters.
  Registry c = deterministic_registry();
  opt.base_seed = 8999;
  const std::string jc = to_json(run_suite(c, opt));
  EXPECT_NE(strip_wallclock_fields(ja), strip_wallclock_fields(jc));
}

TEST(BenchSuite, FilterSelectsSubset) {
  Registry reg = deterministic_registry();
  SuiteOptions opt;
  opt.repeats = 2;
  opt.filter = "pinned";
  const SuiteReport rep = run_suite(reg, opt);
  ASSERT_EQ(rep.benchmarks.size(), 1u);
  EXPECT_EQ(rep.benchmarks[0].name, "pinned");
  EXPECT_DOUBLE_EQ(rep.benchmarks[0].model_pin_ratio, 1.01);
}

// ---- schema: serialize / parse / validate -----------------------------------

TEST(BenchSchema, WriteParseRoundTrip) {
  Registry reg = deterministic_registry();
  SuiteOptions opt;
  opt.repeats = 3;
  opt.base_seed = 42;
  opt.smoke = true;
  const SuiteReport rep = run_suite(reg, opt);
  const SuiteReport back = parse_suite_json(to_json(rep));
  EXPECT_EQ(back.schema, kSuiteSchema);
  EXPECT_EQ(back.repeats, 3);
  EXPECT_EQ(back.base_seed, 42u);
  EXPECT_TRUE(back.smoke);
  ASSERT_EQ(back.benchmarks.size(), rep.benchmarks.size());
  for (std::size_t i = 0; i < back.benchmarks.size(); ++i) {
    const BenchmarkReport& x = back.benchmarks[i];
    const BenchmarkReport& y = rep.benchmarks[i];
    EXPECT_EQ(x.name, y.name);
    EXPECT_EQ(x.metric, y.metric);
    EXPECT_EQ(x.direction, y.direction);
    EXPECT_EQ(x.seeds, y.seeds);
    EXPECT_EQ(x.values, y.values);  // shortest-round-trip doubles: exact
    EXPECT_DOUBLE_EQ(x.stats.mean, y.stats.mean);
    EXPECT_DOUBLE_EQ(x.model_pin_ratio, y.model_pin_ratio);
    EXPECT_EQ(x.perf_gate_active, y.perf_gate_active);
    EXPECT_EQ(x.aux, y.aux);
  }
  EXPECT_TRUE(validate(back).empty()) << validate(back);
}

TEST(BenchSchema, MalformedJsonThrows) {
  EXPECT_THROW(parse_suite_json("not json at all"), Error);
  EXPECT_THROW(parse_suite_json("{\"schema\": \"candle-bench-suite/v1\""),
               Error);
  EXPECT_THROW(parse_suite_json("{}"), Error);
}

TEST(BenchSchema, ValidateCatchesCorruption) {
  Registry reg = deterministic_registry();
  SuiteOptions opt;
  opt.repeats = 2;
  const SuiteReport good = run_suite(reg, opt);
  ASSERT_TRUE(validate(good).empty());

  SuiteReport wrong_schema = good;
  wrong_schema.schema = "candle-bench-suite/v999";
  EXPECT_FALSE(validate(wrong_schema).empty());

  SuiteReport short_seeds = good;
  short_seeds.benchmarks[0].seeds.pop_back();
  EXPECT_FALSE(validate(short_seeds).empty());

  SuiteReport cooked_stats = good;
  cooked_stats.benchmarks[0].stats.mean += 1.0;
  EXPECT_FALSE(validate(cooked_stats).empty());

  SuiteReport dup = good;
  dup.benchmarks.push_back(dup.benchmarks[0]);
  EXPECT_FALSE(validate(dup).empty());

  SuiteReport nan_value = good;
  nan_value.benchmarks[0].values[0] = std::nan("");
  nan_value.benchmarks[0].stats =
      summarize(nan_value.benchmarks[0].values);
  EXPECT_FALSE(validate(nan_value).empty());

  SuiteReport empty = good;
  empty.benchmarks.clear();
  EXPECT_FALSE(validate(empty).empty());
}

// ---- regression gate math ---------------------------------------------------

SuiteReport one_bench_report(const std::string& name, Direction dir,
                             std::vector<double> values,
                             bool gate_active = true) {
  SuiteReport rep;
  rep.repeats = static_cast<int>(values.size());
  rep.base_seed = 1;
  BenchmarkReport b;
  b.name = name;
  b.metric = "m";
  b.unit = "u";
  b.direction = dir;
  for (std::size_t i = 0; i < values.size(); ++i) b.seeds.push_back(1 + i);
  b.values = values;
  b.stats = summarize(values);
  b.perf_gate_active = gate_active;
  if (!gate_active) b.honesty_note = "core-starved host";
  rep.benchmarks.push_back(std::move(b));
  return rep;
}

TEST(BenchGate, SelfComparisonPasses) {
  const SuiteReport r =
      one_bench_report("a", Direction::LowerIsBetter, {1.0, 1.1, 0.9});
  const GateReport g = gate_against_baseline(r, r);
  ASSERT_EQ(g.findings.size(), 1u);
  EXPECT_EQ(g.findings[0].status, GateStatus::Ok);
  EXPECT_TRUE(g.pass());
}

TEST(BenchGate, RegressionOutsideEnvelopeFails) {
  // rel_spread = 0.2/1.0 = 0.2 -> allowed = 2 * 0.2 = 0.4; +60% regresses.
  const SuiteReport base =
      one_bench_report("a", Direction::LowerIsBetter, {0.9, 1.0, 1.1});
  const SuiteReport cur =
      one_bench_report("a", Direction::LowerIsBetter, {1.5, 1.6, 1.7});
  const GateReport g = gate_against_baseline(cur, base);
  ASSERT_EQ(g.findings.size(), 1u);
  EXPECT_EQ(g.findings[0].status, GateStatus::Regressed);
  EXPECT_GT(g.findings[0].rel_change, g.findings[0].allowed);
  EXPECT_FALSE(g.pass());
}

TEST(BenchGate, ChangeInsideEnvelopePasses) {
  // Same spread, +30% change < 40% envelope.
  const SuiteReport base =
      one_bench_report("a", Direction::LowerIsBetter, {0.9, 1.0, 1.1});
  const SuiteReport cur =
      one_bench_report("a", Direction::LowerIsBetter, {1.2, 1.3, 1.4});
  const GateReport g = gate_against_baseline(cur, base);
  EXPECT_EQ(g.findings[0].status, GateStatus::Ok);
  EXPECT_TRUE(g.pass());
}

TEST(BenchGate, ZeroVarianceUsesFloorMargin) {
  const SuiteReport base =
      one_bench_report("a", Direction::LowerIsBetter, {1.0, 1.0, 1.0});
  // +4% sits under the 5% floor even with zero measured variance...
  const SuiteReport small =
      one_bench_report("a", Direction::LowerIsBetter, {1.04, 1.04, 1.04});
  EXPECT_TRUE(gate_against_baseline(small, base).pass());
  // ...but +8% does not.
  const SuiteReport big =
      one_bench_report("a", Direction::LowerIsBetter, {1.08, 1.08, 1.08});
  const GateReport g = gate_against_baseline(big, base);
  EXPECT_EQ(g.findings[0].status, GateStatus::Regressed);
  EXPECT_DOUBLE_EQ(g.findings[0].allowed, 0.05);
}

TEST(BenchGate, DirectionNormalizesSign) {
  // Higher-is-better: a DROP is the regression.
  const SuiteReport base =
      one_bench_report("a", Direction::HigherIsBetter, {100.0, 100.0, 100.0});
  const SuiteReport drop =
      one_bench_report("a", Direction::HigherIsBetter, {80.0, 80.0, 80.0});
  const SuiteReport rise =
      one_bench_report("a", Direction::HigherIsBetter, {120.0, 120.0, 120.0});
  EXPECT_EQ(gate_against_baseline(drop, base).findings[0].status,
            GateStatus::Regressed);
  EXPECT_EQ(gate_against_baseline(rise, base).findings[0].status,
            GateStatus::Improved);
  EXPECT_TRUE(gate_against_baseline(rise, base).pass());
}

TEST(BenchGate, MissingBenchmarkFailsNewPasses) {
  const SuiteReport base =
      one_bench_report("old", Direction::LowerIsBetter, {1.0, 1.0});
  const SuiteReport cur =
      one_bench_report("new", Direction::LowerIsBetter, {1.0, 1.0});
  const GateReport g = gate_against_baseline(cur, base);
  ASSERT_EQ(g.findings.size(), 2u);
  EXPECT_EQ(g.findings[0].status, GateStatus::Missing);
  EXPECT_EQ(g.findings[1].status, GateStatus::New);
  EXPECT_EQ(g.missing, 1);
  EXPECT_FALSE(g.pass());
}

TEST(BenchGate, HonestyFlagMakesFindingInformational) {
  // A 10x regression on a gate-inactive benchmark must not fail the gate.
  const SuiteReport base =
      one_bench_report("a", Direction::LowerIsBetter, {1.0, 1.0}, false);
  const SuiteReport cur =
      one_bench_report("a", Direction::LowerIsBetter, {10.0, 10.0}, false);
  const GateReport g = gate_against_baseline(cur, base);
  EXPECT_EQ(g.findings[0].status, GateStatus::Informational);
  EXPECT_TRUE(g.pass());
}

TEST(BenchGate, MetricRedefinitionTreatedAsNew) {
  SuiteReport base =
      one_bench_report("a", Direction::LowerIsBetter, {1.0, 1.0});
  SuiteReport cur =
      one_bench_report("a", Direction::HigherIsBetter, {1.0, 1.0});
  const GateReport g = gate_against_baseline(cur, base);
  EXPECT_EQ(g.findings[0].status, GateStatus::New);
  EXPECT_TRUE(g.pass());
}

// ---- suite_main exit-code contract ------------------------------------------

struct MainResult {
  int exit_code = 0;
  std::string out;
  std::string err;
};

MainResult drive(std::initializer_list<std::string> argv_tail) {
  Registry reg = deterministic_registry();
  std::vector<std::string> storage{"bench_suite"};
  storage.insert(storage.end(), argv_tail.begin(), argv_tail.end());
  std::vector<const char*> argv;
  argv.reserve(storage.size());
  for (const std::string& s : storage) argv.push_back(s.c_str());
  std::ostringstream out, err;
  MainResult r;
  r.exit_code = suite_main(reg, static_cast<int>(argv.size()), argv.data(),
                           out, err);
  r.out = out.str();
  r.err = err.str();
  return r;
}

class SuiteMainTest : public ::testing::Test {
 protected:
  std::string path(const std::string& leaf) const {
    return (std::filesystem::temp_directory_path() / leaf).string();
  }
  void TearDown() override {
    for (const std::string& p : cleanup_) std::filesystem::remove(p);
  }
  std::vector<std::string> cleanup_;
};

TEST_F(SuiteMainTest, SelfcheckPassesAndBaselineAgainstSelfExitsZero) {
  const std::string json = path("bench_harness_a.json");
  cleanup_.push_back(json);
  const MainResult first =
      drive({"--smoke", "--selfcheck", "--json=" + json});
  EXPECT_EQ(first.exit_code, kExitOk) << first.err;
  EXPECT_NE(first.out.find("self-check"), std::string::npos);

  const MainResult second =
      drive({"--smoke", "--json=" + json, "--baseline=" + json});
  EXPECT_EQ(second.exit_code, kExitOk) << second.err;
  EXPECT_NE(second.out.find("gate: PASS"), std::string::npos);
}

TEST_F(SuiteMainTest, DegradedBaselineExitsNonzero) {
  const std::string json = path("bench_harness_b.json");
  const std::string baseline = path("bench_harness_b_base.json");
  cleanup_.push_back(json);
  cleanup_.push_back(baseline);
  ASSERT_EQ(drive({"--smoke", "--json=" + json}).exit_code, kExitOk);

  // Synthetically improve the baseline far beyond the envelope: the current
  // run then reads as a regression and the gate must fail the build.
  SuiteReport base = parse_suite_json([&] {
    std::ifstream in(json);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  }());
  for (BenchmarkReport& b : base.benchmarks) {
    for (double& v : b.values) {
      v = b.direction == Direction::LowerIsBetter ? v * 0.5 : v * 2.0;
    }
    b.stats = summarize(b.values);
  }
  {
    std::ofstream out(baseline);
    write_json(base, out);
  }
  const MainResult r =
      drive({"--smoke", "--json=" + json, "--baseline=" + baseline});
  EXPECT_EQ(r.exit_code, kExitRegression);
  EXPECT_NE(r.out.find("REGRESSED"), std::string::npos);
}

TEST_F(SuiteMainTest, MissingBaselineFileIsFirstRunPass) {
  const std::string json = path("bench_harness_c.json");
  cleanup_.push_back(json);
  const MainResult r = drive(
      {"--smoke", "--json=" + json, "--baseline=" + path("nope_missing.json")});
  EXPECT_EQ(r.exit_code, kExitOk);
  EXPECT_NE(r.out.find("no baseline"), std::string::npos);
}

TEST_F(SuiteMainTest, MalformedBaselineIsUsageError) {
  const std::string json = path("bench_harness_d.json");
  const std::string baseline = path("bench_harness_d_base.json");
  cleanup_.push_back(json);
  cleanup_.push_back(baseline);
  {
    std::ofstream out(baseline);
    out << "{ definitely not a suite artifact ]";
  }
  const MainResult r =
      drive({"--smoke", "--json=" + json, "--baseline=" + baseline});
  EXPECT_EQ(r.exit_code, kExitUsage);
}

TEST_F(SuiteMainTest, UsageErrors) {
  EXPECT_EQ(drive({"--bogus"}).exit_code, kExitUsage);
  EXPECT_EQ(drive({"--seeds=abc"}).exit_code, kExitUsage);
  EXPECT_EQ(drive({"--seeds=0"}).exit_code, kExitUsage);
  const std::string json = path("bench_harness_e.json");
  cleanup_.push_back(json);
  EXPECT_EQ(drive({"--filter=no_such_bench", "--json=" + json}).exit_code,
            kExitUsage);
  EXPECT_EQ(drive({"--json=/nonexistent-dir/x/y.json"}).exit_code,
            kExitUsage);
}

TEST_F(SuiteMainTest, SeedsFlagControlsRepeatCount) {
  const std::string json = path("bench_harness_f.json");
  cleanup_.push_back(json);
  ASSERT_EQ(drive({"--smoke", "--seeds=5", "--seed=7", "--json=" + json})
                .exit_code,
            kExitOk);
  std::ifstream in(json);
  std::ostringstream buf;
  buf << in.rdbuf();
  const SuiteReport rep = parse_suite_json(buf.str());
  EXPECT_EQ(rep.repeats, 5);
  EXPECT_EQ(rep.base_seed, 7u);
  ASSERT_FALSE(rep.benchmarks.empty());
  EXPECT_EQ(rep.benchmarks[0].seeds.size(), 5u);
  EXPECT_EQ(rep.benchmarks[0].seeds[0], 7u);
}

// ---- anchored scaling sweeps ------------------------------------------------

TEST(AnchoredScaling, AnchorRowReproducesMeasurementShapeInvariant) {
  const auto node = hpcsim::summit_node();
  const auto fabric = hpcsim::fat_tree_fabric();
  hpcsim::TrainingWorkload w;
  w.name = "toy";
  w.flops_per_sample = 2e9;
  w.parameters = 5e7;
  w.bytes_per_sample = 6e4;
  w.activation_bytes_per_sample = 4e5;
  const std::vector<hpcsim::Index> counts = {1, 4, 16, 64};
  const double measured = 0.125;

  const auto plain =
      hpcsim::strong_scaling(node, fabric, w, 4096, counts);
  const auto anchored = hpcsim::anchored_strong_scaling(
      node, fabric, w, 4096, counts, measured);
  ASSERT_EQ(anchored.points.size(), plain.size());
  EXPECT_NEAR(anchored.anchor_ratio, measured / plain.front().step_s, 1e-12);
  EXPECT_NEAR(anchored.points.front().step_s, measured, 1e-12);
  for (std::size_t i = 0; i < plain.size(); ++i) {
    // Quotient shape is anchor-invariant; absolutes scale by the ratio.
    EXPECT_NEAR(anchored.points[i].speedup, plain[i].speedup, 1e-9);
    EXPECT_NEAR(anchored.points[i].efficiency, plain[i].efficiency, 1e-9);
    EXPECT_NEAR(anchored.points[i].comm_fraction, plain[i].comm_fraction,
                1e-9);
    EXPECT_NEAR(anchored.points[i].step_s,
                plain[i].step_s * anchored.anchor_ratio, 1e-12);
    EXPECT_NEAR(anchored.points[i].samples_per_s,
                plain[i].samples_per_s / anchored.anchor_ratio, 1e-9);
  }

  const auto weak = hpcsim::anchored_weak_scaling(node, fabric, w, 256,
                                                  counts, measured);
  EXPECT_NEAR(weak.points.front().step_s, measured, 1e-12);
  EXPECT_THROW(hpcsim::anchored_strong_scaling(node, fabric, w, 4096, counts,
                                               0.0),
               Error);
}

}  // namespace

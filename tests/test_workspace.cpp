// Workspace-arena semantics and the zero-allocation guarantee of the packed
// GEMM path: after a warm-up call, repeated GEMMs of the same shape must not
// grow any arena (grow_count flat across the whole process).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "core/kernels.hpp"
#include "core/tensor.hpp"
#include "runtime/rng.hpp"
#include "runtime/workspace.hpp"

namespace candle {
namespace {

bool aligned64(const void* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kWorkspaceAlign == 0;
}

TEST(WorkspaceArena, AllocationsAreCacheLineAligned) {
  WorkspaceArena arena;
  WorkspaceArena::Scope scope(arena);
  for (std::size_t bytes : {1u, 7u, 64u, 100u, 4096u}) {
    EXPECT_TRUE(aligned64(arena.alloc_bytes(bytes))) << bytes;
  }
  // Odd-sized requests must not misalign the next one.
  (void)arena.alloc_bytes(3);
  EXPECT_TRUE(aligned64(arena.alloc_bytes(8)));
}

TEST(WorkspaceArena, ScopeRollbackReusesMemory) {
  WorkspaceArena arena;
  void* first = nullptr;
  {
    WorkspaceArena::Scope scope(arena);
    first = arena.alloc_bytes(512);
  }
  const std::uint64_t grows = arena.grow_count();
  {
    WorkspaceArena::Scope scope(arena);
    // Same request after rollback lands on the same storage, no growth.
    EXPECT_EQ(arena.alloc_bytes(512), first);
  }
  EXPECT_EQ(arena.grow_count(), grows);
}

TEST(WorkspaceArena, NestedScopesRollBackToTheirOwnMark) {
  WorkspaceArena arena;
  WorkspaceArena::Scope outer(arena);
  float* a = arena.alloc<float>(16);
  a[0] = 42.0f;
  void* inner_ptr = nullptr;
  {
    WorkspaceArena::Scope inner(arena);
    inner_ptr = arena.alloc_bytes(64);
    EXPECT_NE(inner_ptr, static_cast<void*>(a));
  }
  // Inner rollback must not disturb the outer allocation...
  EXPECT_EQ(a[0], 42.0f);
  // ...and the inner slot is reusable again.
  EXPECT_EQ(arena.alloc_bytes(64), inner_ptr);
}

TEST(WorkspaceArena, GrowsOnlyWhenCapacityIsExceeded) {
  WorkspaceArena arena;
  WorkspaceArena::Scope scope(arena);
  (void)arena.alloc_bytes(1024);
  const std::uint64_t grows = arena.grow_count();
  const std::uint64_t reserved = arena.bytes_reserved();
  // Anything that still fits must not allocate.
  (void)arena.alloc_bytes(64);
  EXPECT_EQ(arena.grow_count(), grows);
  // Exceeding total capacity must.
  (void)arena.alloc_bytes(static_cast<std::size_t>(reserved) + 1);
  EXPECT_GT(arena.grow_count(), grows);
}

TEST(WorkspaceArena, PointersSurviveLaterGrowth) {
  // Grow-only blocks: an early allocation stays valid (and intact) even when
  // a later over-capacity request adds a new block mid-scope.
  WorkspaceArena arena;
  WorkspaceArena::Scope scope(arena);
  float* early = arena.alloc<float>(256);
  for (int i = 0; i < 256; ++i) early[i] = static_cast<float>(i);
  (void)arena.alloc_bytes(static_cast<std::size_t>(arena.bytes_reserved()) +
                          1024);
  for (int i = 0; i < 256; ++i) {
    ASSERT_EQ(early[i], static_cast<float>(i));
  }
}

TEST(WorkspaceArena, ReserveIsAHint) {
  WorkspaceArena arena;
  arena.reserve(1 << 16);
  const std::uint64_t grows = arena.grow_count();
  WorkspaceArena::Scope scope(arena);
  (void)arena.alloc_bytes(1 << 16);
  EXPECT_EQ(arena.grow_count(), grows);  // pre-reserved, no new block
}

TEST(WorkspaceArena, LocalIsPerThreadAndStable) {
  WorkspaceArena& a = WorkspaceArena::local();
  WorkspaceArena& b = WorkspaceArena::local();
  EXPECT_EQ(&a, &b);
}

TEST(TensorStorage, DataIsCacheLineAligned) {
  Tensor t({33, 17});
  EXPECT_TRUE(aligned64(t.data()));
}

// ---- the zero-allocation guarantee ------------------------------------------

TEST(WorkspaceSteadyState, RepeatedGemmDoesNotGrowArenas) {
  Pcg32 rng(99);
  const Index m = 150, n = 140, k = 130;  // non-multiples of every block size
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c({m, n});

  // Warm-up: arenas reach their high-water mark for this shape.
  for (int i = 0; i < 3; ++i) {
    matmul_into(c, a, Op::None, b, Op::None);
  }
  const std::uint64_t grows_before = workspace_stats().grow_count;
  const std::uint64_t allocs_before = workspace_stats().alloc_count;
  for (int i = 0; i < 10; ++i) {
    matmul_into(c, a, Op::None, b, Op::None);
  }
  const WorkspaceStats after = workspace_stats();
  // The arenas were exercised (the packed path really allocates from them)...
  EXPECT_GT(after.alloc_count, allocs_before);
  // ...but steady state performs zero heap growth.
  EXPECT_EQ(after.grow_count, grows_before);
}

TEST(WorkspaceSteadyState, EmulatedPrecisionsAreAllocationFreeToo) {
  Pcg32 rng(100);
  const Index m = 96, n = 80, k = 64;
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c({m, n});
  for (Precision p : {Precision::BF16, Precision::FP16, Precision::INT8}) {
    for (int i = 0; i < 3; ++i) {
      matmul_into(c, a, Op::None, b, Op::None, 1.0f, 0.0f, p);
    }
    const std::uint64_t grows = workspace_stats().grow_count;
    for (int i = 0; i < 5; ++i) {
      matmul_into(c, a, Op::None, b, Op::None, 1.0f, 0.0f, p);
    }
    EXPECT_EQ(workspace_stats().grow_count, grows) << precision_name(p);
  }
}

}  // namespace
}  // namespace candle

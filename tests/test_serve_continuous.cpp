// Continuous-batching serving tests (DESIGN.md "Continuous batching"):
// the RowSlotAssembler slot matrix, the continuous Engine scheduling mode
// (bit-identity with serial predict, exact accounting, low-load promptness,
// queue-wait/service latency split), the cold-start calibration probe, and
// a randomized chaos property suite driving the continuous SupervisedEngine
// through seeded crash/hang/corruption schedules.  Wired into the TSan and
// ASan CI jobs alongside test_serve / test_serve_resilience.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "nn/batching.hpp"
#include "nn/model.hpp"
#include "runtime/fault.hpp"
#include "runtime/rng.hpp"
#include "serve/engine.hpp"
#include "serve/supervisor.hpp"

namespace candle {
namespace {

using runtime::FaultInjector;
using runtime::FaultSchedule;
using serve::BatchPolicy;
using serve::Engine;
using serve::EngineOptions;
using serve::EngineStats;
using serve::Outcome;
using serve::Request;
using serve::Response;
using serve::SupervisedEngine;
using serve::SupervisedOptions;

Model mlp(Index in, Index hidden, Index out, std::uint64_t seed) {
  Model m;
  m.add(make_dense(hidden)).add(make_relu()).add(make_dense(out));
  m.build({in}, seed);
  return m;
}

Tensor random_inputs(Index n, Index features, std::uint64_t seed) {
  Pcg32 rng(seed);
  Tensor x({n, features});
  for (Index i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  return x;
}

Request request_for_row(const Tensor& x, Index row) {
  Request r;
  r.id = static_cast<std::uint64_t>(row);
  const Index f = x.numel() / x.dim(0);
  r.input.assign(x.data() + row * f, x.data() + (row + 1) * f);
  return r;
}

void expect_exact_accounting(const EngineStats& s) {
  EXPECT_EQ(s.accounting_gap(), 0)
      << "submitted=" << s.submitted << " completed=" << s.completed
      << " shed=" << s.shed_total() << " failed=" << s.failed;
  EXPECT_EQ(s.latency.total, s.completed);
  EXPECT_EQ(s.queue_wait.total, s.completed);
  EXPECT_EQ(s.service.total, s.completed);
  EXPECT_EQ(s.inflight_rows, 0);
}

// Bit-identity of every Completed response against the serial predict row
// with the same id — the invariant that makes continuous batching a pure
// scheduling change: row outputs are independent of batch composition.
void expect_bit_identical(const std::vector<Response>& responses,
                          const Model& m, const Tensor& x) {
  const Tensor expected = m.predict(x, x.dim(0));
  const Index out_f = expected.numel() / expected.dim(0);
  for (const Response& r : responses) {
    if (r.outcome != Outcome::Completed) continue;
    ASSERT_EQ(static_cast<Index>(r.output.size()), out_f);
    const Index row = static_cast<Index>(r.id);
    for (Index k = 0; k < out_f; ++k) {
      EXPECT_EQ(r.output[static_cast<std::size_t>(k)],
                expected[row * out_f + k])
          << "row " << row << " element " << k;
    }
  }
}

// ---- RowSlotAssembler -------------------------------------------------------

TEST(RowSlotAssembler, AdmitTakesLowestFreeSlotAndEvictReopensIt) {
  RowSlotAssembler slots({3}, 4);
  EXPECT_EQ(slots.capacity(), 4);
  EXPECT_EQ(slots.free_slots(), 4);
  std::vector<float> a{1.f, 2.f, 3.f}, b{4.f, 5.f, 6.f}, c{7.f, 8.f, 9.f};
  EXPECT_EQ(slots.admit(a), 0);
  EXPECT_EQ(slots.admit(b), 1);
  EXPECT_EQ(slots.admit(c), 2);
  EXPECT_EQ(slots.occupied(), 3);
  slots.evict(1);
  EXPECT_FALSE(slots.slot_occupied(1));
  EXPECT_EQ(slots.free_slots(), 2);
  // The freed slot is refilled before any higher slot: deterministic
  // placement, so replayed runs land rows in identical slots.
  EXPECT_EQ(slots.admit(b), 1);
  EXPECT_EQ(slots.admit(a), 3);
  EXPECT_EQ(slots.occupied(), 4);
  EXPECT_EQ(slots.free_slots(), 0);
}

TEST(RowSlotAssembler, GatherPacksOccupiedSlotsAscending) {
  RowSlotAssembler slots({2}, 4);
  std::vector<float> r0{0.f, 1.f}, r1{10.f, 11.f}, r2{20.f, 21.f};
  slots.admit(r0);
  slots.admit(r1);
  slots.admit(r2);
  slots.evict(1);  // occupancy {0, 2}: gather must skip the hole
  const Tensor& y = slots.gather();
  ASSERT_EQ(y.dim(0), 2);
  EXPECT_EQ(y[0], 0.f);
  EXPECT_EQ(y[1], 1.f);
  EXPECT_EQ(y[2], 20.f);
  EXPECT_EQ(y[3], 21.f);
  const std::span<const Index> order = slots.gathered_slots();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);
}

TEST(RowSlotAssembler, SubsetGatherReturnsRequestedSlotsInGivenOrder) {
  RowSlotAssembler slots({2}, 4);
  std::vector<float> r0{0.f, 1.f}, r1{10.f, 11.f}, r2{20.f, 21.f};
  slots.admit(r0);
  slots.admit(r1);
  slots.admit(r2);
  const std::vector<Index> want{2, 0};
  const Tensor& y = slots.gather(want);
  ASSERT_EQ(y.dim(0), 2);
  EXPECT_EQ(y[0], 20.f);
  EXPECT_EQ(y[1], 21.f);
  EXPECT_EQ(y[2], 0.f);
  EXPECT_EQ(y[3], 1.f);
}

TEST(RowSlotAssembler, SteadyStateReusesBuffersWithoutReallocation) {
  // Slot storage and the gather target are sized once at construction; a
  // full admit/gather/evict cycle must cycle through the same allocations
  // (the zero-steady-state-allocation contract the serving hot path needs).
  RowSlotAssembler slots({8}, 4);
  std::vector<float> sample(8, 1.f);
  slots.admit(sample);
  const float* gather_buf = slots.gather().data();
  slots.evict(0);
  for (int iter = 0; iter < 50; ++iter) {
    const Index n = 1 + (iter % 4);
    for (Index i = 0; i < n; ++i) slots.admit(sample);
    EXPECT_EQ(slots.gather().data(), gather_buf) << "gather reallocated";
    for (Index s = 0; s < slots.capacity(); ++s) {
      if (slots.slot_occupied(s)) slots.evict(s);
    }
  }
}

// ---- continuous Engine ------------------------------------------------------

TEST(ContinuousEngineTest, BitIdenticalToSerialPredictWithExactAccounting) {
  const Model m = mlp(16, 32, 8, 7);
  const Tensor x = random_inputs(96, 16, 11);

  EngineOptions opt;
  opt.workers = 3;
  opt.batch.max_batch = 8;
  opt.batch.continuous = true;
  Engine engine(m, opt);
  std::vector<std::future<Response>> futures;
  for (Index i = 0; i < x.dim(0); ++i) {
    futures.push_back(engine.submit(request_for_row(x, i)));
  }
  std::vector<Response> responses;
  responses.reserve(futures.size());
  for (auto& f : futures) responses.push_back(f.get());
  engine.drain();

  for (const Response& r : responses) {
    EXPECT_EQ(r.outcome, Outcome::Completed);
    EXPECT_GE(r.batch_rows, 1);
    EXPECT_LE(r.batch_rows, opt.batch.max_batch);
  }
  expect_bit_identical(responses, m, x);
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_EQ(s.completed, 96u);
  EXPECT_GE(s.batches, 96u / 8u);  // at most max_batch rows per iteration
}

TEST(ContinuousEngineTest, LowLoadServesImmediatelyWhereCoalescingWaits) {
  // One lonely request against a wide-open fill window: the coalescing
  // engine sits out max_wait_s before closing the batch; the continuous
  // engine admits into a free slot the moment a worker is idle.  This is
  // the defining latency cut of the tentpole, asserted with a 4x margin so
  // loaded CI hosts cannot flake it.
  const Model m = mlp(8, 16, 4, 3);
  const Tensor x = random_inputs(4, 8, 5);
  const double window_s = 0.2;

  double coalescing_latency = 0.0;
  {
    EngineOptions opt;
    opt.workers = 1;
    opt.batch.max_batch = 8;
    opt.batch.max_wait_s = window_s;
    Engine engine(m, opt);
    Response r = engine.submit(request_for_row(x, 0)).get();
    EXPECT_EQ(r.outcome, Outcome::Completed);
    coalescing_latency = r.latency_s;
    engine.drain();
  }
  double continuous_latency = 0.0;
  {
    EngineOptions opt;
    opt.workers = 1;
    opt.batch.max_batch = 8;
    opt.batch.max_wait_s = window_s;  // ignored in continuous mode
    opt.batch.continuous = true;
    Engine engine(m, opt);
    Response r = engine.submit(request_for_row(x, 0)).get();
    EXPECT_EQ(r.outcome, Outcome::Completed);
    continuous_latency = r.latency_s;
    engine.drain();
  }
  EXPECT_GE(coalescing_latency, window_s * 0.9);
  EXPECT_LT(continuous_latency, window_s / 4.0);
}

TEST(ContinuousEngineTest, LatencySplitsIntoQueueWaitPlusService) {
  const Model m = mlp(16, 32, 8, 9);
  const Tensor x = random_inputs(64, 16, 13);

  EngineOptions opt;
  opt.workers = 2;
  opt.batch.max_batch = 8;
  opt.batch.continuous = true;
  Engine engine(m, opt);
  std::vector<std::future<Response>> futures;
  for (Index i = 0; i < x.dim(0); ++i) {
    futures.push_back(engine.submit(request_for_row(x, i)));
  }
  for (auto& f : futures) {
    const Response r = f.get();
    ASSERT_EQ(r.outcome, Outcome::Completed);
    // Per response the split is exact by construction (same clock reads).
    EXPECT_NEAR(r.latency_s, r.queue_wait_s + r.service_s,
                1e-9 + 1e-6 * r.latency_s);
    EXPECT_GT(r.service_s, 0.0);
    EXPECT_GE(r.queue_wait_s, 0.0);
  }
  engine.drain();
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  // The histograms quantize each term independently (~10% buckets), but
  // their means must still compose: latency ~= queue_wait + service.
  const double composed = s.queue_wait.mean_s() + s.service.mean_s();
  EXPECT_GT(composed, 0.0);
  EXPECT_NEAR(s.latency.mean_s(), composed, 0.25 * composed);
}

// ---- cold-start calibration probe -------------------------------------------

TEST(CalibrationProbeTest, SeedsEwmaSoColdStartDeadlinesAreEnforced) {
  // Regression for the cold-start mispricing window: without the probe the
  // service EWMA is zero, so the very first request is priced at a zero
  // sojourn and admitted no matter how hopeless its deadline.  With the
  // probe the estimate is calibrated before any admission and an impossible
  // deadline sheds on arrival.
  const Model m = mlp(64, 256, 16, 21);
  const Tensor x = random_inputs(2, 64, 23);

  {
    EngineOptions opt;
    opt.workers = 1;
    opt.batch.max_batch = 32;
    opt.batch.continuous = true;
    opt.calibration_probe = false;
    Engine engine(m, opt);
    Request hopeless = request_for_row(x, 0);
    hopeless.deadline_s = 1e-12;  // impossible, but the cold EWMA prices 0
    const Response r = engine.submit(std::move(hopeless)).get();
    EXPECT_EQ(r.outcome, Outcome::Completed) << "cold EWMA admits everything";
    engine.drain();
  }
  {
    EngineOptions opt;
    opt.workers = 1;
    opt.batch.max_batch = 32;
    opt.batch.continuous = true;
    opt.calibration_probe = true;
    Engine engine(m, opt);
    EXPECT_GT(engine.stats().ewma_row_service_s, 0.0)
        << "probe must seed the EWMA before any submit";
    Request hopeless = request_for_row(x, 0);
    hopeless.deadline_s = 1e-12;
    const Response r = engine.submit(std::move(hopeless)).get();
    EXPECT_EQ(r.outcome, Outcome::ShedDeadline);
    // A generously-budgeted request still sails through.
    Request fine = request_for_row(x, 1);
    const Response ok = engine.submit(std::move(fine)).get();
    EXPECT_EQ(ok.outcome, Outcome::Completed);
    engine.drain();
    const EngineStats s = engine.stats();
    expect_exact_accounting(s);
    EXPECT_EQ(s.shed_deadline, 1u);
    EXPECT_EQ(s.completed, 1u);
  }
}

TEST(CalibrationProbeTest, WorksForCoalescingModeToo) {
  const Model m = mlp(64, 256, 16, 25);
  EngineOptions opt;
  opt.workers = 1;
  opt.batch.max_batch = 32;
  opt.calibration_probe = true;
  Engine engine(m, opt);
  EXPECT_GT(engine.stats().ewma_row_service_s, 0.0);
  Request hopeless;
  hopeless.id = 1;
  hopeless.input.assign(64, 0.5f);
  hopeless.deadline_s = 1e-12;
  EXPECT_EQ(engine.submit(std::move(hopeless)).get().outcome,
            Outcome::ShedDeadline);
  engine.drain();
}

// ---- continuous mode under supervision --------------------------------------

TEST(ContinuousSupervisedTest, CleanRunMatchesSerialPredict) {
  const Model m = mlp(12, 24, 6, 17);
  const Tensor x = random_inputs(64, 12, 19);

  SupervisedOptions opt;
  opt.workers = 2;
  opt.batch.max_batch = 8;
  opt.batch.continuous = true;
  SupervisedEngine engine(m, opt);
  std::vector<std::future<Response>> futures;
  for (Index i = 0; i < x.dim(0); ++i) {
    futures.push_back(engine.submit(request_for_row(x, i)));
  }
  std::vector<Response> responses;
  for (auto& f : futures) responses.push_back(f.get());
  engine.drain();
  expect_bit_identical(responses, m, x);
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_EQ(s.completed, 64u);
  EXPECT_EQ(s.worker_crashes, 0u);
  EXPECT_EQ(s.failed, 0u);
}

TEST(ContinuousSupervisedTest, RowScopePoisonRecomputeIsBitIdentical) {
  const Model m = mlp(8, 32, 4, 31);
  const Tensor x = random_inputs(8, 8, 33);

  // Poison part of the first iteration's output: the supervisor must
  // recompute only the poisoned rows (row-scope gate) and still hand every
  // client the bit-exact serial prediction.
  FaultSchedule schedule;
  schedule.corrupt_batch(/*batch=*/0, /*worker=*/0, /*entries=*/3);
  FaultInjector injector(std::move(schedule));

  SupervisedOptions opt;
  opt.workers = 1;
  opt.batch.max_batch = 8;
  opt.batch.continuous = true;
  SupervisedEngine engine(m, opt, &injector);
  std::vector<std::future<Response>> futures;
  for (Index i = 0; i < x.dim(0); ++i) {
    futures.push_back(engine.submit(request_for_row(x, i)));
  }
  std::vector<Response> responses;
  for (auto& f : futures) responses.push_back(f.get());
  engine.drain();
  expect_bit_identical(responses, m, x);
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_EQ(s.completed, 8u);
  EXPECT_EQ(s.corruption_retries, 1u);
}

TEST(ContinuousSupervisedTest, CrashedWorkerRowsAreRecoveredExactly) {
  const Model m = mlp(8, 16, 4, 41);
  const Tensor x = random_inputs(48, 8, 43);

  FaultSchedule schedule;
  schedule.kill_worker(/*batch=*/0, /*worker=*/0);
  FaultInjector injector(std::move(schedule));

  SupervisedOptions opt;
  opt.workers = 2;
  opt.batch.max_batch = 8;
  opt.batch.continuous = true;
  SupervisedEngine engine(m, opt, &injector);
  std::vector<std::future<Response>> futures;
  for (Index i = 0; i < x.dim(0); ++i) {
    futures.push_back(engine.submit(request_for_row(x, i)));
  }
  std::vector<Response> responses;
  for (auto& f : futures) responses.push_back(f.get());
  engine.drain();
  expect_bit_identical(responses, m, x);
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_EQ(s.completed, 48u);  // crash re-enqueue loses nothing
  EXPECT_EQ(s.worker_crashes, 1u);
  EXPECT_GE(s.requeued, 1u);
}

// Randomized chaos property suite: seeded crash/hang/corruption schedules
// against the continuous scheduler.  For every seed, after drain:
//   * exact accounting (submitted == completed + shed + failed),
//   * zero rows left in flight (the acquire/release invariant),
//   * every Completed output bit-identical to serial predict.
TEST(ContinuousSupervisedTest, SeededChaosSchedulesKeepEveryInvariant) {
  const Model m = mlp(10, 20, 5, 51);
  const Tensor x = random_inputs(64, 10, 53);

  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    FaultInjector injector(runtime::serving_chaos_schedule(
        seed, /*batches=*/10, /*workers=*/2, /*kills=*/1, /*hangs=*/1,
        /*corruptions=*/1, /*hang_delay_s=*/0.12));
    SupervisedOptions opt;
    opt.workers = 2;
    opt.batch.max_batch = 8;
    opt.batch.continuous = true;
    opt.supervise.hedge_min_age_s = 10e-3;
    opt.supervise.hang_min_age_s = 40e-3;
    SupervisedEngine engine(m, opt, &injector);
    std::vector<std::future<Response>> futures;
    for (Index i = 0; i < x.dim(0); ++i) {
      futures.push_back(engine.submit(request_for_row(x, i)));
      if (i % 8 == 7) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    std::vector<Response> responses;
    for (auto& f : futures) responses.push_back(f.get());
    engine.drain();
    const EngineStats s = engine.stats();
    expect_exact_accounting(s);
    expect_bit_identical(responses, m, x);
    std::uint64_t completed = 0;
    for (const Response& r : responses) {
      if (r.outcome == Outcome::Completed) ++completed;
    }
    EXPECT_EQ(completed, s.completed) << "seed " << seed;
    EXPECT_GE(s.completed, 1u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace candle

// Unit + property tests for the dense kernels: all GEMM tiers agree with the
// naive reference across shapes/transposes, GEMV matches GEMM, im2col/col2im
// are mutually adjoint, and precision-emulated GEMM obeys format error bounds.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/kernels.hpp"
#include "runtime/rng.hpp"

namespace candle {
namespace {

Tensor random_matrix(Index r, Index c, Pcg32& rng) {
  return Tensor::randn({r, c}, rng);
}

// ---- GEMM agreement across tiers, shapes and transpose combinations --------

using GemmCase = std::tuple<int, int, int, Op, Op>;

class GemmAgreement : public ::testing::TestWithParam<GemmCase> {};

TEST_P(GemmAgreement, BlockedAndParallelMatchNaive) {
  const auto [m, n, k, op_a, op_b] = GetParam();
  Pcg32 rng(static_cast<std::uint64_t>(m * 73856093 ^ n * 19349663 ^ k));
  const Index ar = op_a == Op::None ? m : k;
  const Index ac = op_a == Op::None ? k : m;
  const Index br = op_b == Op::None ? k : n;
  const Index bc = op_b == Op::None ? n : k;
  Tensor a = random_matrix(ar, ac, rng);
  Tensor b = random_matrix(br, bc, rng);
  Tensor c0 = random_matrix(m, n, rng);
  Tensor c1 = c0;
  Tensor c2 = c0;

  const float alpha = 1.3f, beta = -0.4f;
  gemm_naive(op_a, op_b, m, n, k, alpha, a.data(), ac, b.data(), bc, beta,
             c0.data(), n);
  gemm_serial(op_a, op_b, m, n, k, alpha, a.data(), ac, b.data(), bc, beta,
              c1.data(), n);
  gemm(op_a, op_b, m, n, k, alpha, a.data(), ac, b.data(), bc, beta,
       c2.data(), n);

  const float tol = 1e-3f * static_cast<float>(k);
  EXPECT_LE(max_abs_diff(c0, c1), tol);
  EXPECT_LE(max_abs_diff(c0, c2), tol);
}

INSTANTIATE_TEST_SUITE_P(
    ShapesAndTransposes, GemmAgreement,
    ::testing::Values(
        GemmCase{1, 1, 1, Op::None, Op::None},
        GemmCase{3, 5, 7, Op::None, Op::None},
        GemmCase{3, 5, 7, Op::Transpose, Op::None},
        GemmCase{3, 5, 7, Op::None, Op::Transpose},
        GemmCase{3, 5, 7, Op::Transpose, Op::Transpose},
        GemmCase{64, 64, 64, Op::None, Op::None},
        GemmCase{64, 64, 64, Op::Transpose, Op::Transpose},
        GemmCase{1, 128, 300, Op::None, Op::None},
        GemmCase{128, 1, 300, Op::None, Op::Transpose},
        GemmCase{100, 100, 1, Op::None, Op::None},
        GemmCase{129, 65, 257, Op::None, Op::None},   // crosses parallel cutoff
        GemmCase{129, 65, 257, Op::Transpose, Op::None}));

TEST(Gemm, ZeroKClearsOrScalesC) {
  Tensor c = Tensor::full({2, 2}, 3.0f);
  gemm(Op::None, Op::None, 2, 2, 0, 1.0f, nullptr, 0, nullptr, 0, 0.5f,
       c.data(), 2);
  for (Index i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(c[i], 1.5f);
}

TEST(Gemm, BetaZeroIgnoresGarbageC) {
  Pcg32 rng(2);
  Tensor a = random_matrix(4, 4, rng);
  Tensor b = random_matrix(4, 4, rng);
  Tensor c({4, 4}, std::vector<float>(16, std::nanf("")));
  gemm(Op::None, Op::None, 4, 4, 4, 1.0f, a.data(), 4, b.data(), 4, 0.0f,
       c.data(), 4);
  for (Index i = 0; i < 16; ++i) EXPECT_FALSE(std::isnan(c[i]));
}

TEST(Gemm, NegativeDimensionThrows) {
  EXPECT_THROW(gemm(Op::None, Op::None, -1, 2, 2, 1.0f, nullptr, 0, nullptr,
                    0, 0.0f, nullptr, 0),
               Error);
}

TEST(Gemm, IdentityIsNeutral) {
  Pcg32 rng(3);
  Tensor a = random_matrix(8, 8, rng);
  Tensor eye = Tensor::zeros({8, 8});
  for (Index i = 0; i < 8; ++i) eye.at(i, i) = 1.0f;
  Tensor c = matmul(a, eye);
  EXPECT_LE(max_abs_diff(c, a), 1e-6f);
}

// ---- GEMV -------------------------------------------------------------------

TEST(Gemv, MatchesGemmNoTranspose) {
  Pcg32 rng(4);
  const Index m = 17, n = 23;
  Tensor a = random_matrix(m, n, rng);
  Tensor x = Tensor::randn({n}, rng);
  Tensor y = Tensor::randn({m}, rng);
  Tensor y_ref = y;
  gemv(Op::None, m, n, 2.0f, a.data(), n, x.data(), 0.5f, y.data());
  gemm_naive(Op::None, Op::None, m, 1, n, 2.0f, a.data(), n, x.data(), 1,
             0.5f, y_ref.data(), 1);
  EXPECT_LE(max_abs_diff(y, y_ref), 1e-4f);
}

TEST(Gemv, MatchesGemmTranspose) {
  Pcg32 rng(5);
  const Index m = 11, n = 19;  // op(A) is m x n, stored n x m
  Tensor a = random_matrix(n, m, rng);
  Tensor x = Tensor::randn({n}, rng);
  Tensor y = Tensor::zeros({m});
  Tensor y_ref = Tensor::zeros({m});
  gemv(Op::Transpose, m, n, 1.0f, a.data(), m, x.data(), 0.0f, y.data());
  gemm_naive(Op::Transpose, Op::None, m, 1, n, 1.0f, a.data(), m, x.data(),
             1, 0.0f, y_ref.data(), 1);
  EXPECT_LE(max_abs_diff(y, y_ref), 1e-4f);
}

// ---- matmul wrappers ---------------------------------------------------------

TEST(Matmul, ShapeValidation) {
  Tensor a({2, 3});
  Tensor b({4, 5});
  EXPECT_THROW(matmul(a, b), Error);
  Tensor c({2, 5});
  EXPECT_THROW(matmul_into(c, a, Op::None, b, Op::None), Error);
  Tensor b2({3, 5});
  Tensor bad_c({3, 5});
  EXPECT_THROW(matmul_into(bad_c, a, Op::None, b2, Op::None), Error);
}

TEST(Matmul, KnownProduct) {
  Tensor a({2, 2}, {1, 2, 3, 4});
  Tensor b({2, 2}, {5, 6, 7, 8});
  Tensor c = matmul(a, b);
  EXPECT_FLOAT_EQ(c.at(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c.at(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c.at(1, 1), 50.0f);
}

TEST(Matmul, TransposeVariantsAgreeWithExplicitTranspose) {
  Pcg32 rng(6);
  Tensor a = random_matrix(4, 6, rng);
  Tensor b = random_matrix(4, 5, rng);
  // C = A^T B : (6x4)(4x5) -> 6x5
  Tensor c({6, 5});
  matmul_into(c, a, Op::Transpose, b, Op::None);
  Tensor at({6, 4});
  for (Index i = 0; i < 4; ++i)
    for (Index j = 0; j < 6; ++j) at.at(j, i) = a.at(i, j);
  Tensor c_ref = matmul(at, b);
  EXPECT_LE(max_abs_diff(c, c_ref), 1e-4f);
}

// ---- precision-emulated GEMM -------------------------------------------------

class EmulatedGemm : public ::testing::TestWithParam<Precision> {};

TEST_P(EmulatedGemm, ErrorScalesWithFormatEpsilon) {
  const Precision prec = GetParam();
  Pcg32 rng(7);
  const Index m = 32, n = 24, k = 48;
  Tensor a = random_matrix(m, k, rng);
  Tensor b = random_matrix(k, n, rng);
  Tensor exact({m, n});
  Tensor approx({m, n});
  matmul_into(exact, a, Op::None, b, Op::None);
  gemm_emulated(prec, Op::None, Op::None, m, n, k, 1.0f, a.data(), k,
                b.data(), n, 0.0f, approx.data(), n);
  // Rounded inputs with exact fp32 accumulation: elementwise error is
  // bounded by ~ 2*eps * sum|a||b| <= 2*eps*k*max|a|*max|b|.
  const float bound = 3.0f * precision_epsilon(prec) * static_cast<float>(k) *
                          a.flat()[static_cast<std::size_t>(
                              std::abs(a.argmax()))] // loose cap below
                      + 1e-4f;
  (void)bound;
  const float amax = std::max(std::abs(a.min()), a.max());
  const float bmax = std::max(std::abs(b.min()), b.max());
  const float tol =
      3.0f * precision_epsilon(prec) * static_cast<float>(k) * amax * bmax +
      1e-4f;
  EXPECT_LE(max_abs_diff(exact, approx), tol) << precision_name(prec);
  if (prec == Precision::FP32 || prec == Precision::FP64) {
    EXPECT_EQ(max_abs_diff(exact, approx), 0.0f);
  } else {
    // Reduced formats must actually perturb the result (sanity that the
    // emulation path is active).
    EXPECT_GT(max_abs_diff(exact, approx), 0.0f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, EmulatedGemm,
                         ::testing::Values(Precision::FP64, Precision::FP32,
                                           Precision::BF16, Precision::FP16,
                                           Precision::INT8),
                         [](const auto& pinfo) {
                           return precision_name(pinfo.param);
                         });

TEST(EmulatedGemmTranspose, HandlesTransposedOperands) {
  Pcg32 rng(8);
  const Index m = 8, n = 6, k = 10;
  Tensor a = random_matrix(k, m, rng);  // will be used transposed
  Tensor b = random_matrix(k, n, rng);
  Tensor exact({m, n});
  Tensor approx({m, n});
  gemm(Op::Transpose, Op::None, m, n, k, 1.0f, a.data(), m, b.data(), n, 0.0f,
       exact.data(), n);
  gemm_emulated(Precision::BF16, Op::Transpose, Op::None, m, n, k, 1.0f,
                a.data(), m, b.data(), n, 0.0f, approx.data(), n);
  EXPECT_LE(max_abs_diff(exact, approx), 0.1f);
  EXPECT_GT(max_abs_diff(exact, approx), 0.0f);
}

TEST(Int8Gemm, ExactForSmallIntegers) {
  // Integer-valued inputs within [-127, 127] with max 127 are exactly
  // representable, so int8 GEMM is exact.
  Tensor a({2, 3}, {1, -2, 3, 4, 5, -6});
  Tensor b({3, 2}, {7, 8, 9, -10, 11, 12});
  // Force scale=1 by planting 127 magnitude entries.
  Tensor a2({2, 4}, {1, -2, 3, 127, 4, 5, -6, 0});
  Tensor b2({4, 2}, {7, 8, 9, -10, 11, 12, 0, 127});
  Tensor c({2, 2});
  gemm_int8(2, 2, 4, a2.data(), b2.data(), c.data());
  Tensor c_ref({2, 2});
  gemm_naive(Op::None, Op::None, 2, 2, 4, 1.0f, a2.data(), 4, b2.data(), 2,
             0.0f, c_ref.data(), 2);
  EXPECT_LE(max_abs_diff(c, c_ref), 1e-3f);
}

// ---- im2col / col2im ----------------------------------------------------------

TEST(Im2col1d, KnownSmallCase) {
  // 1 channel, length 5, kernel 3, stride 1 -> 3x3 columns.
  std::vector<float> x = {0, 1, 2, 3, 4};
  std::vector<float> cols(9, -1.0f);
  im2col_1d(x.data(), 1, 5, 3, 1, cols.data());
  // Row t holds x[j + t] for output position j.
  const std::vector<float> expect = {0, 1, 2, 1, 2, 3, 2, 3, 4};
  EXPECT_EQ(cols, expect);
}

TEST(Im2col1d, StrideTwo) {
  std::vector<float> x = {0, 1, 2, 3, 4, 5, 6};
  const Index lout = conv_out_length(7, 3, 2);
  EXPECT_EQ(lout, 3);
  std::vector<float> cols(static_cast<std::size_t>(3 * lout));
  im2col_1d(x.data(), 1, 7, 3, 2, cols.data());
  const std::vector<float> expect = {0, 2, 4, 1, 3, 5, 2, 4, 6};
  EXPECT_EQ(cols, expect);
}

TEST(ConvOutLength, Validation) {
  EXPECT_EQ(conv_out_length(10, 3, 1), 8);
  EXPECT_EQ(conv_out_length(10, 3, 3), 3);
  EXPECT_THROW(conv_out_length(2, 3, 1), Error);
  EXPECT_THROW(conv_out_length(5, 0, 1), Error);
  EXPECT_THROW(conv_out_length(5, 3, 0), Error);
}

// Adjointness property: <im2col(x), y> == <x, col2im(y)> for all x, y.
// This is exactly the identity that makes conv backward correct.
class ColAdjoint1d
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ColAdjoint1d, InnerProductsMatch) {
  const auto [channels, length, kernel, stride] = GetParam();
  Pcg32 rng(13);
  const Index lout = conv_out_length(length, kernel, stride);
  const std::size_t xn = static_cast<std::size_t>(channels * length);
  const std::size_t cn = static_cast<std::size_t>(channels * kernel * lout);
  std::vector<float> x(xn), y(cn), cols(cn), xback(xn, 0.0f);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());
  im2col_1d(x.data(), channels, length, kernel, stride, cols.data());
  col2im_1d(y.data(), channels, length, kernel, stride, xback.data());
  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < cn; ++i) lhs += static_cast<double>(cols[i]) * y[i];
  for (std::size_t i = 0; i < xn; ++i) rhs += static_cast<double>(x[i]) * xback[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ColAdjoint1d,
    ::testing::Values(std::tuple{1, 8, 3, 1}, std::tuple{3, 16, 5, 1},
                      std::tuple{2, 20, 4, 2}, std::tuple{4, 9, 3, 3},
                      std::tuple{1, 3, 3, 1}, std::tuple{5, 32, 7, 2}));

class ColAdjoint2d
    : public ::testing::TestWithParam<std::tuple<int, int, int, int, int>> {};

TEST_P(ColAdjoint2d, InnerProductsMatch) {
  const auto [channels, height, width, kernel, stride] = GetParam();
  Pcg32 rng(14);
  const Index hout = conv_out_length(height, kernel, stride);
  const Index wout = conv_out_length(width, kernel, stride);
  const std::size_t xn = static_cast<std::size_t>(channels * height * width);
  const std::size_t cn =
      static_cast<std::size_t>(channels * kernel * kernel * hout * wout);
  std::vector<float> x(xn), y(cn), cols(cn), xback(xn, 0.0f);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  for (auto& v : y) v = static_cast<float>(rng.normal());
  im2col_2d(x.data(), channels, height, width, kernel, stride, cols.data());
  col2im_2d(y.data(), channels, height, width, kernel, stride, xback.data());
  double lhs = 0, rhs = 0;
  for (std::size_t i = 0; i < cn; ++i) lhs += static_cast<double>(cols[i]) * y[i];
  for (std::size_t i = 0; i < xn; ++i) rhs += static_cast<double>(x[i]) * xback[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ColAdjoint2d,
    ::testing::Values(std::tuple{1, 6, 6, 3, 1}, std::tuple{3, 8, 10, 3, 1},
                      std::tuple{2, 9, 9, 3, 2}, std::tuple{1, 5, 5, 5, 1},
                      std::tuple{4, 12, 8, 4, 2}));

TEST(Im2col2d, ConvViaGemmMatchesDirectConvolution) {
  // Convolve a 1-channel 4x4 image with one 2x2 filter via im2col+GEMM and
  // compare to the hand-rolled direct form.
  Pcg32 rng(15);
  Tensor img = Tensor::randn({1, 4, 4}, rng);
  Tensor filt = Tensor::randn({1, 2, 2}, rng);
  const Index hout = 3, wout = 3;
  std::vector<float> cols(static_cast<std::size_t>(4 * hout * wout));
  im2col_2d(img.data(), 1, 4, 4, 2, 1, cols.data());
  Tensor out({hout * wout});
  gemm_naive(Op::None, Op::None, 1, hout * wout, 4, 1.0f, filt.data(), 4,
             cols.data(), hout * wout, 0.0f, out.data(), hout * wout);
  for (Index oy = 0; oy < hout; ++oy) {
    for (Index ox = 0; ox < wout; ++ox) {
      float direct = 0.0f;
      for (Index ky = 0; ky < 2; ++ky)
        for (Index kx = 0; kx < 2; ++kx)
          direct += img.at(0, oy + ky, ox + kx) * filt.at(0, ky, kx);
      EXPECT_NEAR(out[oy * wout + ox], direct, 1e-5f);
    }
  }
}

// ---- randomized property grid ------------------------------------------------
// Pins every production tier against gemm_naive over randomized shapes
// (including 0, 1 and non-multiples of the register tile), both transposes,
// padded leading dimensions, and an alpha/beta set that includes the
// never-read-C beta == 0 case.

TEST(GemmProperty, RandomizedShapesLeadingDimsAndScalars) {
  Pcg32 rng(0xCAFE);
  const Index dims[] = {0, 1, 2, 3, 7, 8, 9, 31, 32, 33, 65, 130};
  const float alphas[] = {1.0f, -0.7f, 0.0f};
  const float betas[] = {0.0f, 1.0f, -0.3f};
  for (int trial = 0; trial < 60; ++trial) {
    const Index m = dims[rng.next_below(12)];
    const Index n = dims[rng.next_below(12)];
    const Index k = dims[rng.next_below(12)];
    const Op op_a = rng.next_below(2) ? Op::Transpose : Op::None;
    const Op op_b = rng.next_below(2) ? Op::Transpose : Op::None;
    const float alpha = alphas[rng.next_below(3)];
    const float beta = betas[rng.next_below(3)];
    const Index pad_a = static_cast<Index>(rng.next_below(4));
    const Index pad_b = static_cast<Index>(rng.next_below(4));
    const Index lda = (op_a == Op::None ? k : m) + pad_a;
    const Index ldb = (op_b == Op::None ? n : k) + pad_b;

    Tensor a = random_matrix(op_a == Op::None ? m : k, lda > 0 ? lda : 1, rng);
    Tensor b = random_matrix(op_b == Op::None ? k : n, ldb > 0 ? ldb : 1, rng);
    Tensor c0 = random_matrix(m, n > 0 ? n : 1, rng);
    Tensor c1 = c0;
    Tensor c2 = c0;

    gemm_naive(op_a, op_b, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
               c0.data(), n);
    gemm_serial(op_a, op_b, m, n, k, alpha, a.data(), lda, b.data(), ldb,
                beta, c1.data(), n);
    gemm(op_a, op_b, m, n, k, alpha, a.data(), lda, b.data(), ldb, beta,
         c2.data(), n);

    const float tol = 1e-4f * static_cast<float>(k > 0 ? k : 1);
    ASSERT_LE(max_abs_diff(c0, c1), tol)
        << "serial m=" << m << " n=" << n << " k=" << k;
    ASSERT_LE(max_abs_diff(c0, c2), tol)
        << "parallel m=" << m << " n=" << n << " k=" << k;
  }
}

TEST(GemmProperty, EmulatedPrecisionsHandleAwkwardShapes) {
  // The round-at-pack emulation must survive the same edge geometry as fp32;
  // correctness is checked against rounding the operands up front and running
  // the naive kernel on them (identical mathematical definition).
  Pcg32 rng(0xBEEF);
  const Index shapes[][3] = {{1, 1, 1}, {5, 3, 9},  {8, 32, 16},
                             {9, 33, 17}, {33, 9, 40}, {2, 130, 7}};
  for (Precision prec : {Precision::BF16, Precision::FP16}) {
    for (const auto& s : shapes) {
      const Index m = s[0], n = s[1], k = s[2];
      Tensor a = random_matrix(m, k, rng);
      Tensor b = random_matrix(k, n, rng);
      Tensor ar = a, br = b;
      round_through(prec, ar.flat());
      round_through(prec, br.flat());
      Tensor want({m, n});
      gemm_naive(Op::None, Op::None, m, n, k, 1.0f, ar.data(), k, br.data(),
                 n, 0.0f, want.data(), n);
      Tensor got({m, n});
      gemm_emulated(prec, Op::None, Op::None, m, n, k, 1.0f, a.data(), k,
                    b.data(), n, 0.0f, got.data(), n);
      ASSERT_LE(max_abs_diff(want, got), 1e-4f * static_cast<float>(k))
          << precision_name(prec) << " m=" << m << " n=" << n << " k=" << k;
    }
  }
}

// ---- fused epilogues ---------------------------------------------------------

float reference_act(Epilogue::Act act, float v) {
  switch (act) {
    case Epilogue::Act::ReLU: return v > 0.0f ? v : 0.0f;
    case Epilogue::Act::Sigmoid: return 1.0f / (1.0f + std::exp(-v));
    case Epilogue::Act::Tanh: return std::tanh(v);
    case Epilogue::Act::None: break;
  }
  return v;
}

class FusedEpilogue : public ::testing::TestWithParam<Epilogue::Act> {};

TEST_P(FusedEpilogue, BitIdenticalToUnfusedReference) {
  // Fusing is a pure data-movement optimization: the fused C-write must
  // produce the exact bits of "plain GEMM, then bias add, then activation".
  const Epilogue::Act act = GetParam();
  Pcg32 rng(0xF00D);
  const Index m = 37, n = 41, k = 29;  // all non-multiples of the tile
  Tensor a = random_matrix(m, k, rng);
  Tensor b = random_matrix(k, n, rng);
  Tensor col_bias = Tensor::randn({n}, rng);
  Tensor row_bias = Tensor::randn({m}, rng);
  Tensor c_init = random_matrix(m, n, rng);

  for (const bool row_axis : {false, true}) {
    for (const float beta : {0.0f, 0.6f}) {
      Tensor want = c_init;
      gemm(Op::None, Op::None, m, n, k, 1.0f, a.data(), k, b.data(), n, beta,
           want.data(), n);
      for (Index i = 0; i < m; ++i) {
        for (Index j = 0; j < n; ++j) {
          float v = want.at(i, j) + (row_axis ? row_bias[i] : col_bias[j]);
          want.at(i, j) = reference_act(act, v);
        }
      }
      Epilogue ep;
      ep.bias = row_axis ? row_bias.data() : col_bias.data();
      ep.bias_axis =
          row_axis ? Epilogue::BiasAxis::Row : Epilogue::BiasAxis::Column;
      ep.act = act;
      Tensor got = c_init;
      gemm_fused(Op::None, Op::None, m, n, k, 1.0f, a.data(), k, b.data(), n,
                 beta, got.data(), n, ep);
      ASSERT_EQ(max_abs_diff(want, got), 0.0f)
          << "axis=" << (row_axis ? "row" : "col") << " beta=" << beta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllActivations, FusedEpilogue,
                         ::testing::Values(Epilogue::Act::None,
                                           Epilogue::Act::ReLU,
                                           Epilogue::Act::Sigmoid,
                                           Epilogue::Act::Tanh));

TEST(FusedEpilogueDegenerate, AppliesToScaledCWhenKIsZero) {
  // k == 0 still runs the epilogue: C = act(beta*C + bias).
  Tensor c({2, 3}, {1, -2, 3, -4, 5, -6});
  Tensor bias({3}, {10, 20, 30});
  Epilogue ep;
  ep.bias = bias.data();
  ep.act = Epilogue::Act::ReLU;
  gemm_fused(Op::None, Op::None, 2, 3, 0, 1.0f, nullptr, 1, nullptr, 1, 1.0f,
             c.data(), 3, ep);
  EXPECT_FLOAT_EQ(c.at(0, 0), 11.0f);
  EXPECT_FLOAT_EQ(c.at(0, 1), 18.0f);
  EXPECT_FLOAT_EQ(c.at(1, 2), 24.0f);
}

TEST(FusedEpilogueInt8, BiasAndActRideTheDequant) {
  Pcg32 rng(0xACE);
  const Index m = 12, n = 10, k = 16;
  Tensor a = random_matrix(m, k, rng);
  Tensor b = random_matrix(k, n, rng);
  Tensor bias = Tensor::randn({n}, rng);
  Tensor plain({m, n});
  gemm_emulated(Precision::INT8, Op::None, Op::None, m, n, k, 1.0f, a.data(),
                k, b.data(), n, 0.0f, plain.data(), n);
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < n; ++j) {
      plain.at(i, j) = reference_act(Epilogue::Act::ReLU,
                                     plain.at(i, j) + bias[j]);
    }
  }
  Epilogue ep;
  ep.bias = bias.data();
  ep.act = Epilogue::Act::ReLU;
  Tensor fused({m, n});
  gemm_emulated(Precision::INT8, Op::None, Op::None, m, n, k, 1.0f, a.data(),
                k, b.data(), n, 0.0f, fused.data(), n, ep);
  EXPECT_EQ(max_abs_diff(plain, fused), 0.0f);
}

// ---- gemv beta == 0 regression ----------------------------------------------

TEST(Gemv, BetaZeroOverwritesNaNPoisonedY) {
  // BLAS convention: beta == 0 means y is write-only.  A NaN-poisoned y must
  // come out finite — the old kernel computed y[i] *= 0 which kept the NaN.
  Pcg32 rng(0xDEAD);
  const Index m = 67, n = 45;
  Tensor a = random_matrix(m, n, rng);
  Tensor x = Tensor::randn({n}, rng);
  Tensor y({m}, std::vector<float>(static_cast<std::size_t>(m),
                                   std::nanf("")));
  gemv(Op::None, m, n, 1.0f, a.data(), n, x.data(), 0.0f, y.data());
  Tensor want = Tensor::zeros({m});
  gemm_naive(Op::None, Op::None, m, 1, n, 1.0f, a.data(), n, x.data(), 1,
             0.0f, want.data(), 1);
  for (Index i = 0; i < m; ++i) {
    ASSERT_FALSE(std::isnan(y[i])) << i;
  }
  EXPECT_LE(max_abs_diff(y, want), 1e-4f);
}

TEST(Gemv, BetaZeroOverwritesNaNPoisonedYTransposed) {
  Pcg32 rng(0xD00D);
  const Index m = 53, n = 31;  // op(A) m x n, stored n x m
  Tensor a = random_matrix(n, m, rng);
  Tensor x = Tensor::randn({n}, rng);
  Tensor y({m}, std::vector<float>(static_cast<std::size_t>(m),
                                   std::nanf("")));
  gemv(Op::Transpose, m, n, -0.5f, a.data(), m, x.data(), 0.0f, y.data());
  Tensor want = Tensor::zeros({m});
  gemm_naive(Op::Transpose, Op::None, m, 1, n, -0.5f, a.data(), m, x.data(),
             1, 0.0f, want.data(), 1);
  for (Index i = 0; i < m; ++i) {
    ASSERT_FALSE(std::isnan(y[i])) << i;
  }
  EXPECT_LE(max_abs_diff(y, want), 1e-4f);
}

// ---- fused conv forward ------------------------------------------------------

TEST(ConvForwardGemm, MatchesExplicitIm2colPlusBias1d) {
  Pcg32 rng(0xC0FFEE);
  const Index channels = 3, length = 40, kernel = 5, stride = 2, filters = 7;
  const Index lout = conv_out_length(length, kernel, stride);
  const Index fan_in = channels * kernel;
  Tensor x = Tensor::randn({channels, length}, rng);
  Tensor w = Tensor::randn({filters, fan_in}, rng);
  Tensor bias = Tensor::randn({filters}, rng);

  std::vector<float> cols(static_cast<std::size_t>(fan_in * lout));
  im2col_1d(x.data(), channels, length, kernel, stride, cols.data());
  Tensor want({filters, lout});
  gemm(Op::None, Op::None, filters, lout, fan_in, 1.0f, w.data(), fan_in,
       cols.data(), lout, 0.0f, want.data(), lout);
  for (Index f = 0; f < filters; ++f) {
    for (Index j = 0; j < lout; ++j) want.at(f, j) += bias[f];
  }

  Tensor got({filters, lout});
  conv1d_forward_gemm(Precision::FP32, x.data(), channels, length, kernel,
                      stride, w.data(), filters, bias.data(), got.data());
  EXPECT_EQ(max_abs_diff(want, got), 0.0f);
}

TEST(ConvForwardGemm, MatchesExplicitIm2colPlusBias2d) {
  Pcg32 rng(0xC0DE);
  const Index channels = 2, height = 13, width = 11, kernel = 3, stride = 2;
  const Index filters = 5;
  const Index hout = conv_out_length(height, kernel, stride);
  const Index wout = conv_out_length(width, kernel, stride);
  const Index ncols = hout * wout;
  const Index fan_in = channels * kernel * kernel;
  Tensor x = Tensor::randn({channels, height, width}, rng);
  Tensor w = Tensor::randn({filters, fan_in}, rng);
  Tensor bias = Tensor::randn({filters}, rng);

  std::vector<float> cols(static_cast<std::size_t>(fan_in * ncols));
  im2col_2d(x.data(), channels, height, width, kernel, stride, cols.data());
  Tensor want({filters, ncols});
  gemm(Op::None, Op::None, filters, ncols, fan_in, 1.0f, w.data(), fan_in,
       cols.data(), ncols, 0.0f, want.data(), ncols);
  for (Index f = 0; f < filters; ++f) {
    for (Index j = 0; j < ncols; ++j) want.at(f, j) += bias[f];
  }

  Tensor got({filters, ncols});
  conv2d_forward_gemm(Precision::FP32, x.data(), channels, height, width,
                      kernel, stride, w.data(), filters, bias.data(),
                      got.data());
  EXPECT_EQ(max_abs_diff(want, got), 0.0f);
}

}  // namespace
}  // namespace candle

// Model-level tests: construction contracts, deterministic builds,
// end-to-end training on separable synthetic tasks, flat weight/grad
// serialization, precision plumbing, and the fit() trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace candle {
namespace {

Model mlp(Index in, Index hidden, Index out, std::uint64_t seed) {
  Model m;
  m.add(make_dense(hidden)).add(make_relu()).add(make_dense(out));
  m.build({in}, seed);
  return m;
}

// Two gaussian blobs, linearly separable.
Dataset blobs(Index n, Index features, std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({n, features}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < features; ++j) {
      d.x.at(i, j) =
          static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.7));
    }
  }
  return d;
}

TEST(Model, BuildContracts) {
  Model m;
  EXPECT_THROW(m.build({4}, 0), Error);  // no layers
  m.add(make_dense(2));
  EXPECT_THROW(m.add(nullptr), Error);
  m.build({4}, 0);
  EXPECT_THROW(m.build({4}, 0), Error);    // double build
  EXPECT_THROW(m.add(make_dense(1)), Error);  // add after build
}

TEST(Model, ForwardRequiresBuild) {
  Model m;
  m.add(make_dense(2));
  EXPECT_THROW(m.forward(Tensor({1, 4})), Error);
}

TEST(Model, DeterministicInitAcrossInstances) {
  Model a = mlp(8, 16, 4, 99);
  Model b = mlp(8, 16, 4, 99);
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(max_abs_diff(*pa[i], *pb[i]), 0.0f);
  }
  Model c = mlp(8, 16, 4, 100);
  EXPECT_GT(max_abs_diff(*c.params()[0], *pa[0]), 0.0f);
}

TEST(Model, CountsParams) {
  Model m = mlp(10, 8, 3, 1);
  // dense(8): 10*8+8 ; dense(3): 8*3+3
  EXPECT_EQ(m.num_params(), 10 * 8 + 8 + 8 * 3 + 3);
  EXPECT_EQ(m.grad_size(), m.num_params());
  EXPECT_GT(m.flops_per_sample(), 0.0);
  EXPECT_EQ(m.summary(), "dense(8) -> relu -> dense(3)");
}

TEST(Model, OutputShape) {
  Model m;
  m.add(make_conv1d(4, 3)).add(make_relu()).add(make_maxpool1d(2));
  m.add(make_flatten()).add(make_dense(5));
  m.build({2, 12}, 7);
  EXPECT_EQ(m.output_shape(), (Shape{5}));
  Tensor y = m.forward(Tensor({3, 2, 12}));
  EXPECT_EQ(y.shape(), (Shape{3, 5}));
}

TEST(Model, WeightRoundTripThroughFlatBuffer) {
  Model m = mlp(6, 12, 2, 3);
  std::vector<float> buf(static_cast<std::size_t>(m.num_params()));
  m.copy_weights_to(buf);
  Model m2 = mlp(6, 12, 2, 4);  // different init
  m2.set_weights_from(buf);
  Pcg32 rng(5);
  Tensor x = Tensor::randn({4, 6}, rng);
  EXPECT_EQ(max_abs_diff(m.forward(x), m2.forward(x)), 0.0f);
}

TEST(Model, GradRoundTripAndScale) {
  Model m = mlp(6, 12, 2, 3);
  Pcg32 rng(6);
  Tensor x = Tensor::randn({4, 6}, rng);
  Tensor y({4, 2});
  MeanSquaredError mse;
  const Tensor pred = m.forward(x, true);
  m.backward(mse.grad(pred, y));
  std::vector<float> buf(static_cast<std::size_t>(m.grad_size()));
  m.copy_grads_to(buf);
  m.scale_grads(2.0f);
  std::vector<float> buf2(buf.size());
  m.copy_grads_to(buf2);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    EXPECT_FLOAT_EQ(buf2[i], 2.0f * buf[i]);
  }
  m.set_grads_from(buf);
  std::vector<float> buf3(buf.size());
  m.copy_grads_to(buf3);
  EXPECT_EQ(buf3, buf);
  std::vector<float> small(3);
  EXPECT_THROW(m.copy_grads_to(small), Error);
}

TEST(Model, TrainsXor) {
  // XOR: the classic non-linearly-separable task; an MLP must fit it.
  Model m;
  m.add(make_dense(8)).add(make_tanh()).add(make_dense(1));
  m.build({2}, 17);
  Tensor x({4, 2}, {0, 0, 0, 1, 1, 0, 1, 1});
  Tensor y({4, 1}, {0, 1, 1, 0});
  MeanSquaredError mse;
  Adam opt(0.05f);
  float loss = 0.0f;
  for (int step = 0; step < 400; ++step) loss = m.train_batch(x, y, mse, opt);
  EXPECT_LT(loss, 0.01f);
  const Tensor pred = m.forward(x);
  EXPECT_LT(pred.at(0, 0), 0.3f);
  EXPECT_GT(pred.at(1, 0), 0.7f);
  EXPECT_GT(pred.at(2, 0), 0.7f);
  EXPECT_LT(pred.at(3, 0), 0.3f);
}

TEST(Model, TrainsBlobClassifier) {
  Dataset d = blobs(256, 8, 21);
  Model m;
  m.add(make_dense(16)).add(make_relu()).add(make_dense(2));
  m.build({8}, 22);
  SoftmaxCrossEntropy xent;
  Adam opt(0.01f);
  FitOptions fo;
  fo.epochs = 15;
  fo.batch_size = 32;
  fo.seed = 23;
  const FitHistory h = fit(m, d, nullptr, xent, opt, fo);
  EXPECT_LT(h.final_train_loss(), 0.1f);
  EXPECT_GT(accuracy(m.predict(d.x), d.y), 0.97);
  // Loss decreased monotonically-ish.
  EXPECT_LT(h.train_loss.back(), h.train_loss.front());
}

TEST(Model, EvaluateMatchesManualLoss) {
  Model m = mlp(4, 8, 2, 31);
  Pcg32 rng(32);
  Tensor x = Tensor::randn({100, 4}, rng);
  Tensor y = Tensor::randn({100, 2}, rng);
  MeanSquaredError mse;
  const float manual = mse.value(m.forward(x), y);
  // Batched evaluation with an uneven final slice must agree.
  EXPECT_NEAR(m.evaluate(x, y, mse, 33), manual, 1e-4f);
}

TEST(Model, PredictMatchesForward) {
  Model m = mlp(4, 8, 3, 41);
  Pcg32 rng(42);
  Tensor x = Tensor::randn({50, 4}, rng);
  EXPECT_LE(max_abs_diff(m.predict(x, 7), m.forward(x)), 1e-6f);
}

TEST(Model, PrecisionPropagatesToLayers) {
  Model m = mlp(4, 8, 2, 51);
  m.set_compute_precision(Precision::BF16);
  EXPECT_EQ(m.compute_precision(), Precision::BF16);
  for (Index i = 0; i < m.num_layers(); ++i) {
    EXPECT_EQ(m.layer(i).precision(), Precision::BF16);
  }
}

TEST(Trainer, LossScalingIsTransparentInFp32) {
  // With exact fp32 math, loss scaling must not change the trajectory.
  Dataset d = blobs(64, 4, 61);
  Model m1, m2;
  for (Model* m : {&m1, &m2}) {
    m->add(make_dense(8)).add(make_relu()).add(make_dense(2));
    m->build({4}, 62);
  }
  SoftmaxCrossEntropy xent;
  Sgd o1(0.1f), o2(0.1f);
  FitOptions fo;
  fo.epochs = 3;
  fo.batch_size = 16;
  fo.seed = 63;
  const FitHistory h1 = fit(m1, d, nullptr, xent, o1, fo);
  fo.precision.loss_scale = 256.0f;
  const FitHistory h2 = fit(m2, d, nullptr, xent, o2, fo);
  for (std::size_t e = 0; e < h1.train_loss.size(); ++e) {
    EXPECT_NEAR(h1.train_loss[e], h2.train_loss[e], 2e-3f);
  }
}

TEST(Trainer, ValidationLossTracked) {
  Dataset d = blobs(200, 6, 71);
  auto [train, val] = split(d, 0.8, 72);
  Model m;
  m.add(make_dense(12)).add(make_relu()).add(make_dense(2));
  m.build({6}, 73);
  SoftmaxCrossEntropy xent;
  Adam opt(0.01f);
  FitOptions fo;
  fo.epochs = 8;
  fo.batch_size = 16;
  fo.seed = 74;
  const FitHistory h = fit(m, train, &val, xent, opt, fo);
  ASSERT_EQ(h.val_loss.size(), h.train_loss.size());
  for (float v : h.val_loss) EXPECT_FALSE(std::isnan(v));
  EXPECT_LT(h.best_val_loss(), h.val_loss.front());
  EXPECT_GT(h.samples_per_second, 0.0);
}

TEST(Trainer, EarlyStopCallback) {
  Dataset d = blobs(64, 4, 81);
  Model m;
  m.add(make_dense(4)).add(make_dense(2));
  m.build({4}, 82);
  SoftmaxCrossEntropy xent;
  Sgd opt(0.05f);
  FitOptions fo;
  fo.epochs = 50;
  fo.batch_size = 16;
  Index calls = 0;
  fo.on_epoch = [&](Index, float, float) { return ++calls < 5; };
  const FitHistory h = fit(m, d, nullptr, xent, opt, fo);
  EXPECT_EQ(h.train_loss.size(), 5u);
}

TEST(Trainer, ReducedPrecisionStillLearns) {
  // The headline claim in miniature: bf16 compute reaches comparable loss.
  Dataset d = blobs(256, 8, 91);
  Model m32, m16;
  for (Model* m : {&m32, &m16}) {
    m->add(make_dense(16)).add(make_relu()).add(make_dense(2));
    m->build({8}, 92);
  }
  SoftmaxCrossEntropy xent;
  Adam o1(0.01f), o2(0.01f);
  FitOptions fo;
  fo.epochs = 10;
  fo.batch_size = 32;
  fo.seed = 93;
  const FitHistory h32 = fit(m32, d, nullptr, xent, o1, fo);
  fo.precision = PrecisionPolicy::standard(Precision::BF16);
  const FitHistory h16 = fit(m16, d, nullptr, xent, o2, fo);
  EXPECT_LT(h32.final_train_loss(), 0.15f);
  EXPECT_LT(h16.final_train_loss(), 0.25f);  // close to fp32 quality
}

TEST(Metrics, Accuracy) {
  Tensor logits({3, 2}, {2, 1, 0, 5, 1, 0});
  Tensor labels({3}, {0, 1, 1});
  EXPECT_NEAR(accuracy(logits, labels), 2.0 / 3.0, 1e-9);
}

TEST(Metrics, R2PerfectAndMeanBaseline) {
  Tensor t({4}, {1, 2, 3, 4});
  EXPECT_NEAR(r2_score(t, t), 1.0, 1e-9);
  Tensor mean_pred = Tensor::full({4}, 2.5f);
  EXPECT_NEAR(r2_score(mean_pred, t), 0.0, 1e-6);
}

TEST(Metrics, AucKnownCases) {
  Tensor perfect({4}, {0.1f, 0.2f, 0.8f, 0.9f});
  Tensor labels({4}, {0, 0, 1, 1});
  EXPECT_NEAR(roc_auc(perfect, labels), 1.0, 1e-9);
  Tensor inverted({4}, {0.9f, 0.8f, 0.2f, 0.1f});
  EXPECT_NEAR(roc_auc(inverted, labels), 0.0, 1e-9);
  Tensor constant = Tensor::full({4}, 0.5f);
  EXPECT_NEAR(roc_auc(constant, labels), 0.5, 1e-9);  // ties -> chance
  Tensor all_pos({3}, {1, 2, 3});
  Tensor bad_labels = Tensor::ones({3});
  EXPECT_THROW(roc_auc(all_pos, bad_labels), Error);
}

TEST(Metrics, PearsonKnownCases) {
  Tensor a({4}, {1, 2, 3, 4});
  Tensor b({4}, {2, 4, 6, 8});
  EXPECT_NEAR(pearson_r(a, b), 1.0, 1e-9);
  Tensor c({4}, {8, 6, 4, 2});
  EXPECT_NEAR(pearson_r(a, c), -1.0, 1e-9);
  Tensor d = Tensor::full({4}, 3.0f);
  EXPECT_EQ(pearson_r(a, d), 0.0);
}

}  // namespace
}  // namespace candle

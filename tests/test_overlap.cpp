// Bucketed gradient all-reduce with comm/compute overlap: static bucket
// plans, the gradient-ready hook, the global-window ring (bit-identical to
// the monolithic reduction under any partition), nonblocking collectives
// with several buckets in flight, the failure contract on in-flight ops,
// end-to-end bit-identity of overlapped data-parallel and resilient
// training, the overlap-aware perfmodel term, and the sparse wire-format
// byte accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <functional>
#include <thread>

#include "hpcsim/perfmodel.hpp"
#include "nn/metrics.hpp"
#include "parallel/bucketing.hpp"
#include "parallel/collectives.hpp"
#include "parallel/compression.hpp"
#include "parallel/data_parallel.hpp"
#include "parallel/resilient.hpp"
#include "runtime/rng.hpp"

namespace candle::parallel {
namespace {

void run_ranks(Index p, const std::function<void(Index)>& body) {
  std::vector<std::thread> threads;
  for (Index r = 0; r < p; ++r) threads.emplace_back([&, r] { body(r); });
  for (auto& t : threads) t.join();
}

std::vector<std::vector<float>> random_rank_data(Index p, Index n,
                                                 std::uint64_t seed) {
  std::vector<std::vector<float>> data(static_cast<std::size_t>(p));
  Pcg32 rng(seed);
  for (auto& v : data) {
    v.resize(static_cast<std::size_t>(n));
    for (auto& x : v) x = static_cast<float>(rng.normal(0.0, 1.0));
  }
  return data;
}

// ---- bucket plans -----------------------------------------------------------

TEST(BucketPlan, CoversEveryParameterOnceInReverseLaunchOrder) {
  // Layer grads: 40, 0 (relu), 24, 0, 8, 100 elements.
  const std::vector<Index> sizes{40, 0, 24, 0, 8, 100};
  const BucketPlan plan = plan_buckets(sizes, /*bucket_bytes=*/4 * 64);

  EXPECT_EQ(plan.total_numel, 172);
  ASSERT_GE(plan.num_buckets(), 2);
  // Bucket 0 covers the deepest layers; walking the launch order backwards
  // through the flat vector must tile it exactly.
  Index expected_end = plan.total_numel;
  for (const GradBucket& b : plan.buckets) {
    EXPECT_EQ(b.offset + b.numel, expected_end);
    EXPECT_GT(b.numel, 0);
    expected_end = b.offset;
  }
  EXPECT_EQ(expected_end, 0);
  // Every bucket except the last (shallowest) meets the 64-element target.
  for (Index i = 0; i + 1 < plan.num_buckets(); ++i) {
    EXPECT_GE(plan.buckets[static_cast<std::size_t>(i)].numel, 64);
  }
  // Parameter-less layers belong to no bucket; others to exactly one, and
  // deeper layers never land in a later bucket than shallower ones.
  EXPECT_EQ(plan.bucket_of_layer[1], -1);
  EXPECT_EQ(plan.bucket_of_layer[3], -1);
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    if (plan.bucket_of_layer[l] < 0 || plan.bucket_of_layer[l + 1] < 0) {
      continue;
    }
    EXPECT_GE(plan.bucket_of_layer[l], plan.bucket_of_layer[l + 1]);
  }
  // Deterministic: same inputs, same plan.
  const BucketPlan again = plan_buckets(sizes, 4 * 64);
  ASSERT_EQ(again.num_buckets(), plan.num_buckets());
  for (Index i = 0; i < plan.num_buckets(); ++i) {
    const auto s = static_cast<std::size_t>(i);
    EXPECT_EQ(again.buckets[s].offset, plan.buckets[s].offset);
    EXPECT_EQ(again.buckets[s].numel, plan.buckets[s].numel);
  }
}

TEST(BucketPlan, OneGiantBucketWhenTargetExceedsModel) {
  const BucketPlan plan = plan_buckets({10, 20, 30}, /*bucket_bytes=*/1 << 20);
  ASSERT_EQ(plan.num_buckets(), 1);
  EXPECT_EQ(plan.buckets[0].offset, 0);
  EXPECT_EQ(plan.buckets[0].numel, 60);
}

TEST(BucketAssembler, CompletesBucketsByPlanNotArrivalOrder) {
  const std::vector<Index> sizes{40, 0, 24, 8};
  const BucketPlan plan = plan_buckets(sizes, 4 * 32);  // {3,2} then {0}
  ASSERT_EQ(plan.num_buckets(), 2);

  BucketAssembler a(plan);
  EXPECT_EQ(a.mark_ready(1), -1);  // parameter-less: no bucket
  EXPECT_EQ(a.mark_ready(3), -1);  // bucket 0 still waits on layer 2
  EXPECT_EQ(a.mark_ready(0), 1);   // bucket 1 complete (single layer)
  EXPECT_FALSE(a.all_complete());
  EXPECT_EQ(a.mark_ready(2), 0);   // bucket 0 complete
  EXPECT_TRUE(a.all_complete());
  EXPECT_THROW(a.mark_ready(2), std::runtime_error);  // double report

  a.reset();
  EXPECT_FALSE(a.all_complete());
  EXPECT_EQ(a.mark_ready(2), -1);
  EXPECT_EQ(a.mark_ready(3), 0);
}

// ---- global-window ring bit-identity ----------------------------------------

TEST(WindowedRing, AnyPartitionMatchesMonolithicBitwise) {
  for (const Index p : {2, 3, 4, 8}) {
    const Index n = 257;  // prime-ish: chunk boundaries land mid-window
    auto mono = random_rank_data(p, n, 1234 + static_cast<std::uint64_t>(p));
    auto part = mono;  // identical inputs

    ShmCommunicator comm_a(p);
    run_ranks(p, [&](Index r) {
      comm_a.allreduce_ring(r, mono[static_cast<std::size_t>(r)]);
    });

    // Partition including windows smaller than the rank count.
    const std::vector<Index> cuts{0, 1, 3, 64, 65, 200, n};
    ShmCommunicator comm_b(p);
    run_ranks(p, [&](Index r) {
      auto& buf = part[static_cast<std::size_t>(r)];
      for (std::size_t w = 0; w + 1 < cuts.size(); ++w) {
        const Index lo = cuts[w], hi = cuts[w + 1];
        comm_b.allreduce_ring(
            r,
            std::span<float>(buf.data() + lo, static_cast<std::size_t>(hi - lo)),
            lo, n);
      }
    });

    for (Index r = 0; r < p; ++r) {
      EXPECT_EQ(part[static_cast<std::size_t>(r)],
                mono[static_cast<std::size_t>(r)])
          << "partitioned reduction diverged at p=" << p << " rank " << r;
    }
  }
}

// ---- nonblocking collectives ------------------------------------------------

TEST(NonblockingRing, SingleOpMatchesBlockingBitwise) {
  const Index p = 4, n = 100;
  auto blocking = random_rank_data(p, n, 77);
  auto nonblocking = blocking;

  ShmCommunicator comm_a(p);
  run_ranks(p, [&](Index r) {
    comm_a.allreduce_ring(r, blocking[static_cast<std::size_t>(r)]);
  });

  ShmCommunicator comm_b(p);
  run_ranks(p, [&](Index r) {
    PendingCollective h =
        comm_b.allreduce_ring_start(r, nonblocking[static_cast<std::size_t>(r)]);
    EXPECT_TRUE(h.valid());
    h.wait();
    h.wait();  // idempotent
    EXPECT_TRUE(h.done());
    EXPECT_GE(h.busy_seconds(), 0.0);
  });

  for (Index r = 0; r < p; ++r) {
    EXPECT_EQ(nonblocking[static_cast<std::size_t>(r)],
              blocking[static_cast<std::size_t>(r)]);
  }
}

TEST(NonblockingRing, ManyMixedSizeOpsInFlightMatchMonolithic) {
  // Several buckets in flight at once, mixed sizes including windows with
  // fewer elements than ranks — the concurrent-collectives stress shape.
  for (const Index p : {2, 3, 4, 8}) {
    const Index n = 403;
    auto mono = random_rank_data(p, n, 555 + static_cast<std::uint64_t>(p));
    auto bucketed = mono;

    ShmCommunicator comm_a(p);
    run_ranks(p, [&](Index r) {
      comm_a.allreduce_ring(r, mono[static_cast<std::size_t>(r)]);
    });

    const std::vector<Index> cuts{0, 2, 3, 130, 131, 140, 390, n};
    ShmCommunicator comm_b(p);
    run_ranks(p, [&](Index r) {
      auto& buf = bucketed[static_cast<std::size_t>(r)];
      std::vector<PendingCollective> handles;
      for (std::size_t w = 0; w + 1 < cuts.size(); ++w) {
        const Index lo = cuts[w], hi = cuts[w + 1];
        handles.push_back(comm_b.allreduce_ring_start(
            r,
            std::span<float>(buf.data() + lo, static_cast<std::size_t>(hi - lo)),
            lo, n));
      }
      for (auto& h : handles) h.wait();
    });

    for (Index r = 0; r < p; ++r) {
      EXPECT_EQ(bucketed[static_cast<std::size_t>(r)],
                mono[static_cast<std::size_t>(r)])
          << "overlapped buckets diverged at p=" << p << " rank " << r;
    }
  }
}

TEST(NonblockingRing, DeadRankPoisonsInFlightOpsOnAllSurvivors) {
  const Index p = 4, n = 64;
  ShmCommunicator comm(p);
  comm.set_timeout(std::chrono::milliseconds(200));
  auto data = random_rank_data(p, n, 99);
  std::atomic<int> failures{0};

  run_ranks(p, [&](Index r) {
    if (r == 3) {
      // Dies before starting any of its ops: in-flight peers must not hang.
      comm.mark_failed(r);
      return;
    }
    auto& buf = data[static_cast<std::size_t>(r)];
    std::vector<PendingCollective> handles;
    for (Index lo : {Index{0}, Index{32}}) {
      handles.push_back(comm.allreduce_ring_start(
          r, std::span<float>(buf.data() + lo, 32), lo, n));
    }
    for (auto& h : handles) {
      try {
        h.wait();
        ADD_FAILURE() << "in-flight op survived a dead rank";
      } catch (const RankFailure& f) {
        failures.fetch_add(1);
        EXPECT_EQ(f.failed_ranks(), std::vector<Index>{3});
      }
    }
  });
  EXPECT_EQ(failures.load(), 6);  // 3 survivors x 2 in-flight ops
}

TEST(NonblockingRing, StartAfterPoisonFailsFast) {
  const Index p = 2;
  ShmCommunicator comm(p);
  comm.set_timeout(std::chrono::milliseconds(200));
  comm.mark_failed(1);
  std::vector<float> buf(16, 1.0f);
  PendingCollective h = comm.allreduce_ring_start(0, buf);
  EXPECT_THROW(h.wait(), RankFailure);
}

// ---- end-to-end data-parallel bit-identity ----------------------------------

Model overlap_model(std::uint64_t seed) {
  Model m;
  m.add(make_dense(24))
      .add(make_relu())
      .add(make_dense(24))
      .add(make_relu())
      .add(make_dense(12))
      .add(make_relu())
      .add(make_dense(2));
  m.build({6}, seed);
  return m;
}

ModelFactory overlap_model_factory(std::uint64_t seed) {
  return [seed] { return overlap_model(seed); };
}

Dataset blob_dataset(Index n, std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({n, 6}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < 6; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  return d;
}

std::vector<float> weights_of(const Model& m) {
  std::vector<float> w(static_cast<std::size_t>(m.num_params()));
  m.copy_weights_to(w);
  return w;
}

DataParallelOptions dp_options() {
  DataParallelOptions o;
  o.replicas = 4;
  o.epochs = 2;
  o.batch_per_replica = 16;
  o.seed = 31;
  return o;
}

TEST(OverlappedDataParallel, DenseBucketedOverlapBitIdenticalToMonolithic) {
  const Dataset d = blob_dataset(256, 7);
  SoftmaxCrossEntropy xent;

  Model mono_model;
  const DataParallelResult mono =
      train_data_parallel(overlap_model_factory(8), [] { return make_adam(5e-3f); },
                          d, xent, dp_options(), &mono_model);
  EXPECT_EQ(mono.buckets_per_step, 1);
  EXPECT_EQ(mono.measured_overlap_fraction, 0.0);

  DataParallelOptions bucketed = dp_options();
  bucketed.bucket_bytes = 1024;  // several buckets for this model
  Model bucketed_model;
  const DataParallelResult blocking =
      train_data_parallel(overlap_model_factory(8), [] { return make_adam(5e-3f); },
                          d, xent, bucketed, &bucketed_model);
  EXPECT_GT(blocking.buckets_per_step, 1);

  bucketed.overlap_comm = true;
  Model overlap_model_out;
  const DataParallelResult overlapped =
      train_data_parallel(overlap_model_factory(8), [] { return make_adam(5e-3f); },
                          d, xent, bucketed, &overlap_model_out);
  EXPECT_EQ(overlapped.buckets_per_step, blocking.buckets_per_step);
  EXPECT_GE(overlapped.measured_overlap_fraction, 0.0);
  EXPECT_LE(overlapped.measured_overlap_fraction, 1.0);
  EXPECT_GT(overlapped.measured_comm_busy_s, 0.0);

  // The tentpole guarantee: bucketing and overlap change the schedule, not
  // one bit of the numerics.
  EXPECT_EQ(weights_of(bucketed_model), weights_of(mono_model));
  EXPECT_EQ(weights_of(overlap_model_out), weights_of(mono_model));
}

TEST(OverlappedDataParallel, PerBucketTopKOverlapMatchesNonOverlapBitwise) {
  // Per-bucket top-k selects different entries than global top-k, so the
  // compressed comparison is overlap-on vs overlap-off at the same bucket
  // plan (both run the identical per-bucket compressors).
  const Dataset d = blob_dataset(256, 7);
  SoftmaxCrossEntropy xent;

  DataParallelOptions off = dp_options();
  off.gradient_topk_fraction = 0.25;
  off.bucket_bytes = 1024;
  Model off_model;
  const DataParallelResult res_off = train_data_parallel(
      overlap_model_factory(8), [] { return make_adam(5e-3f); }, d, xent, off,
      &off_model);

  DataParallelOptions on = off;
  on.overlap_comm = true;
  Model on_model;
  const DataParallelResult res_on = train_data_parallel(
      overlap_model_factory(8), [] { return make_adam(5e-3f); }, d, xent, on,
      &on_model);

  EXPECT_EQ(weights_of(on_model), weights_of(off_model));
  EXPECT_EQ(res_on.grad_bytes_per_step, res_off.grad_bytes_per_step);
  // Sparse buckets ship ~fraction of the dense bytes.
  EXPECT_LT(res_on.grad_bytes_per_step,
            0.6 * 4.0 * static_cast<double>(overlap_model(8).grad_size()));
}

// ---- composition with the resilient trainer ---------------------------------

TEST(OverlappedResilient, CrashRestartRecoveryBitIdenticalToMonolithic) {
  const Dataset d = blob_dataset(256, 61);
  SoftmaxCrossEntropy xent;
  auto opts = [&](const std::string& tag, bool overlap) {
    ResilientOptions o;
    o.train = dp_options();
    o.train.seed = 71;
    o.train.epochs = 4;
    o.checkpoint_every_steps = 4;
    o.checkpoint_path = "/tmp/candle_overlap_" + tag + ".bin";
    o.collective_timeout = std::chrono::milliseconds(500);
    if (overlap) {
      o.train.bucket_bytes = 1024;
      o.train.overlap_comm = true;
    }
    o.faults.crash(3, 1).crash(9, 2, /*announce=*/false).corrupt(6, 0, 32);
    return o;
  };

  Model mono;
  const ResilientResult res_mono =
      train_resilient(overlap_model_factory(62), [] { return make_adam(5e-3f); },
                      d, xent, opts("mono", false), &mono);
  Model over;
  const ResilientResult res_over =
      train_resilient(overlap_model_factory(62), [] { return make_adam(5e-3f); },
                      d, xent, opts("over", true), &over);

  EXPECT_EQ(res_over.crashes, res_mono.crashes);
  EXPECT_EQ(res_over.corruptions, res_mono.corruptions);
  EXPECT_EQ(res_over.committed_steps, res_mono.committed_steps);
  EXPECT_EQ(weights_of(over), weights_of(mono))
      << "overlapped buckets must not perturb crash/corruption recovery";
  for (const std::string tag : {"mono", "over"}) {
    std::filesystem::remove("/tmp/candle_overlap_" + tag + ".bin");
    std::filesystem::remove("/tmp/candle_overlap_" + tag + ".bin.tmp");
  }
}

TEST(OverlappedResilient, ElasticShrinkRecoveryBitIdenticalToMonolithic) {
  const Dataset d = blob_dataset(256, 61);
  SoftmaxCrossEntropy xent;
  auto opts = [&](const std::string& tag, bool overlap) {
    ResilientOptions o;
    o.train = dp_options();
    o.train.seed = 71;
    o.train.epochs = 4;
    o.checkpoint_every_steps = 4;
    o.checkpoint_path = "/tmp/candle_overlap_shrink_" + tag + ".bin";
    o.collective_timeout = std::chrono::milliseconds(500);
    o.policy = RecoveryPolicy::Shrink;
    if (overlap) {
      o.train.bucket_bytes = 1024;
      o.train.overlap_comm = true;
    }
    o.faults.crash(5, 2);
    return o;
  };

  Model mono;
  const ResilientResult res_mono =
      train_resilient(overlap_model_factory(62), [] { return make_adam(5e-3f); },
                      d, xent, opts("mono", false), &mono);
  Model over;
  const ResilientResult res_over =
      train_resilient(overlap_model_factory(62), [] { return make_adam(5e-3f); },
                      d, xent, opts("over", true), &over);

  EXPECT_EQ(res_mono.shrinks, 1);
  EXPECT_EQ(res_over.shrinks, 1);
  EXPECT_EQ(res_over.final_replicas, res_mono.final_replicas);
  EXPECT_EQ(weights_of(over), weights_of(mono))
      << "the 3-rank bucketed reduction must match the 3-rank monolithic one";
  for (const std::string tag : {"mono", "over"}) {
    std::filesystem::remove("/tmp/candle_overlap_shrink_" + tag + ".bin");
    std::filesystem::remove("/tmp/candle_overlap_shrink_" + tag + ".bin.tmp");
  }
}

TEST(OverlappedResilient, RejectsQuorumMitigationModes) {
  ResilientOptions o;
  o.train = dp_options();
  o.train.bucket_bytes = 1024;
  o.checkpoint_path = "/tmp/candle_overlap_reject.bin";
  o.mitigation = MitigationMode::Backup;
  const Dataset d = blob_dataset(256, 61);
  EXPECT_THROW(train_resilient(overlap_model_factory(62),
                               [] { return make_adam(5e-3f); }, d,
                               SoftmaxCrossEntropy(), o),
               std::runtime_error);
}

// ---- perfmodel overlap law --------------------------------------------------

TEST(OverlapModel, ExposedCommDrainSimulationPinned) {
  namespace hs = hpcsim;
  // One bucket ready at end of backward: everything is exposed.
  EXPECT_DOUBLE_EQ(hs::overlapped_exposed_comm_s(1, 0.3, 1.0), 0.3);
  // No backward to hide behind: fully exposed serial drain.
  EXPECT_DOUBLE_EQ(hs::overlapped_exposed_comm_s(4, 0.25, 0.0), 1.0);
  // Wire far cheaper than compute: only the last bucket's tail shows.
  EXPECT_NEAR(hs::overlapped_exposed_comm_s(10, 0.01, 10.0), 0.01, 1e-12);
  // Engine saturated: B buckets of t_b behind backward's first 1/B chunk.
  // exposed = (1/B)*bwd + B*t_b - bwd for t_b >= bwd/B.
  EXPECT_NEAR(hs::overlapped_exposed_comm_s(4, 0.5, 1.0), 0.25 + 2.0 - 1.0,
              1e-12);
  // Monotone in bucket wire time.
  double prev = 0.0;
  for (double t = 0.0; t < 0.5; t += 0.05) {
    const double e = hs::overlapped_exposed_comm_s(8, t, 1.0);
    EXPECT_GE(e, prev);
    prev = e;
  }
}

TEST(OverlapModel, EstimateStepOverlapNeverSlowerAndDefaultUnchanged) {
  namespace hs = hpcsim;
  const hs::NodeSpec node = hs::summit_node();
  const hs::Fabric fabric = hs::fat_tree_fabric();
  hs::TrainingWorkload w;
  w.name = "comm-heavy";
  w.flops_per_sample = 4e8;
  w.parameters = 5e7;  // 200 MB of fp32 gradient: comm dominated
  w.bytes_per_sample = 1e4;
  w.activation_bytes_per_sample = 1e5;

  hs::ParallelPlan mono;
  mono.data_replicas = 8;
  mono.batch_per_replica = 8;
  const hs::StepEstimate base = hs::estimate_step(node, fabric, w, mono);
  EXPECT_DOUBLE_EQ(base.dp_comm_exposed_s, base.dp_comm_s);
  EXPECT_EQ(base.overlap_fraction, 0.0);

  hs::ParallelPlan bucketed = mono;
  bucketed.bucket_bytes = 4.0 * 1024 * 1024;
  const hs::StepEstimate over = hs::estimate_step(node, fabric, w, bucketed);
  EXPECT_LE(over.dp_comm_exposed_s, over.dp_comm_s);
  EXPECT_LE(over.step_s, base.step_s * 1.0 + 1e-12);
  EXPECT_GT(over.overlap_fraction, 0.0);
  EXPECT_LE(over.overlap_fraction, 1.0);

  // The modeled exposed time must agree with the drain law applied to the
  // estimate's own components (internal consistency).
  const double math_s = std::max(over.compute_s, over.memory_s);
  const double nb = std::ceil(w.parameters * 4.0 / bucketed.bucket_bytes);
  const double t_b = over.dp_comm_s / nb;
  EXPECT_NEAR(over.dp_comm_exposed_s,
              hs::overlapped_exposed_comm_s(static_cast<Index>(nb), t_b,
                                            math_s * (2.0 / 3.0)),
              1e-12);
}

// ---- sparse wire-format byte accounting -------------------------------------

TEST(SparseWireFormat, ByteAccountingMatchesDocumentedEncoding) {
  std::vector<float> grad(1000);
  Pcg32 rng(5);
  for (auto& g : grad) g = static_cast<float>(rng.normal(0.0, 1.0));

  const SparseGradient s = top_k_sparsify(grad, 0.1);
  EXPECT_EQ(s.nnz(), 100);
  // 4B uint32 index + 4B fp32 value per entry, nothing else.
  EXPECT_DOUBLE_EQ(SparseGradient::kWireBytesPerEntry, 8.0);
  EXPECT_DOUBLE_EQ(s.wire_bytes(), 8.0 * 100.0);
  // Every index fits the 32-bit wire encoding exactly.
  for (const Index i : s.indices) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, kMaxSparseDenseSize);
    EXPECT_EQ(static_cast<Index>(static_cast<std::uint32_t>(i)), i);
  }
  // At least one entry always ships, even for tiny fractions.
  const SparseGradient tiny = top_k_sparsify(grad, 1e-9);
  EXPECT_EQ(tiny.nnz(), 1);
  EXPECT_DOUBLE_EQ(tiny.wire_bytes(), 8.0);
}

TEST(SparseWireFormat, RejectsGradientsBeyondUint32IndexRange) {
  // The guard fires before any allocation, so the oversized request is safe
  // to make.
  EXPECT_THROW(ErrorFeedbackCompressor(kMaxSparseDenseSize, 0.5),
               std::runtime_error);
  EXPECT_NO_THROW(ErrorFeedbackCompressor(1024, 0.5));
}

}  // namespace
}  // namespace candle::parallel

// HPO tests: search-space decoding properties, per-strategy contracts, and
// the headline claim that intelligent strategies beat naive search on
// synthetic landscapes.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "hpo/objectives.hpp"
#include "hpo/searchers.hpp"

namespace candle::hpo {
namespace {

SearchSpace small_space() {
  SearchSpace s;
  s.add_log_float("lr", 1e-4, 1e-1);
  s.add_int("units", 8, 64);
  s.add_categorical("opt", {"sgd", "adam"});
  s.add_float("dropout", 0.0, 0.5);
  return s;
}

TEST(SearchSpace, DecodesEveryKind) {
  const SearchSpace s = small_space();
  EXPECT_EQ(s.dims(), 4);
  UnitConfig c = {0.0, 0.0, 0.0, 0.0};
  EXPECT_NEAR(s.decode_float(c, "lr"), 1e-4, 1e-9);
  EXPECT_EQ(s.decode_int(c, "units"), 8);
  EXPECT_EQ(s.decode_categorical(c, "opt"), "sgd");
  EXPECT_EQ(s.decode_float(c, "dropout"), 0.0);
  UnitConfig hi = {0.999, 0.999, 0.999, 0.999};
  EXPECT_NEAR(s.decode_float(hi, "lr"), 1e-1, 1e-2 * 0.7);
  EXPECT_EQ(s.decode_int(hi, "units"), 64);
  EXPECT_EQ(s.decode_categorical(hi, "opt"), "adam");
}

TEST(SearchSpace, LogScaleMidpointIsGeometricMean) {
  const SearchSpace s = small_space();
  UnitConfig mid = {0.5, 0.5, 0.5, 0.5};
  EXPECT_NEAR(s.decode_float(mid, "lr"), std::sqrt(1e-4 * 1e-1), 1e-6);
}

TEST(SearchSpace, IntDecodingCoversRangeUniformly) {
  const SearchSpace s = small_space();
  Pcg32 rng(1);
  std::set<Index> seen;
  for (int i = 0; i < 3000; ++i) {
    seen.insert(s.decode_int(s.sample(rng), "units"));
  }
  EXPECT_EQ(*seen.begin(), 8);
  EXPECT_EQ(*seen.rbegin(), 64);
  EXPECT_EQ(static_cast<Index>(seen.size()), 57);  // every value hit
}

TEST(SearchSpace, ValidationAndErrors) {
  SearchSpace s = small_space();
  EXPECT_THROW(s.add_log_float("bad", 0.0, 1.0), Error);
  EXPECT_THROW(s.add_float("bad", 2.0, 1.0), Error);
  EXPECT_THROW(s.add_int("bad", 5, 2), Error);
  EXPECT_THROW(s.add_categorical("bad", {}), Error);
  EXPECT_THROW(s.index_of("nope"), Error);
  UnitConfig wrong = {0.5};
  EXPECT_THROW(s.decode_float(wrong, "lr"), Error);
  Pcg32 rng(2);
  UnitConfig c = s.sample(rng);
  EXPECT_THROW(s.decode_int(c, "lr"), Error);
  EXPECT_THROW(s.decode_categorical(c, "units"), Error);
}

TEST(SearchSpace, ClampPullsIntoCube) {
  const SearchSpace s = small_space();
  UnitConfig c = {-0.5, 1.5, 0.5, 2.0};
  s.clamp(c);
  for (double v : c) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(SearchSpace, CardinalityCountsTensOfThousands) {
  // The paper's "tens of thousands of model configurations".
  const SearchSpace s = make_mlp_space();
  EXPECT_GT(s.cardinality(10), 1e4);
  Pcg32 rng(3);
  EXPECT_FALSE(s.describe(s.sample(rng)).empty());
}

// ---- strategy contracts ----------------------------------------------------------

class SearcherContract : public ::testing::TestWithParam<std::string> {};

TEST_P(SearcherContract, SuggestionsAreValidAndBestIsTracked) {
  const SearchSpace s = small_space();
  auto searcher = make_searcher(GetParam(), s, 42, 64);
  EXPECT_EQ(searcher->name(), GetParam());
  const Objective f = make_sphere_objective(s, 7);
  double best = 1e300;
  for (int i = 0; i < 40; ++i) {
    UnitConfig c = searcher->suggest();
    ASSERT_EQ(static_cast<Index>(c.size()), s.dims());
    for (double v : c) {
      ASSERT_GE(v, 0.0);
      ASSERT_LT(v, 1.0);
    }
    const double obj = f(c);
    searcher->observe(c, obj);
    best = std::min(best, obj);
  }
  EXPECT_EQ(searcher->num_observed(), 40);
  EXPECT_DOUBLE_EQ(searcher->best().objective, best);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, SearcherContract,
                         ::testing::Values("grid", "random", "lhs",
                                           "evolution", "surrogate",
                                           "generative"),
                         [](const auto& pinfo) { return pinfo.param; });

TEST(Searcher, ObserveRejectsBadInput) {
  const SearchSpace s = small_space();
  RandomSearcher r(s, 1);
  EXPECT_THROW(r.best(), Error);
  EXPECT_THROW(r.observe({0.5}, 1.0), Error);  // wrong dims
  UnitConfig c = r.suggest();
  EXPECT_THROW(r.observe(c, std::nan("")), Error);
  EXPECT_THROW(make_searcher("annealing", s, 1, 10), Error);
}

TEST(GridSearcher, CoversLatticeDeterministically) {
  SearchSpace s;
  s.add_float("a", 0.0, 1.0);
  s.add_float("b", 0.0, 1.0);
  GridSearcher g(s, 9);
  EXPECT_EQ(g.points_per_dim(), 3);
  std::set<std::pair<int, int>> cells;
  for (int i = 0; i < 9; ++i) {
    const UnitConfig c = g.suggest();
    cells.insert({static_cast<int>(c[0] * 3), static_cast<int>(c[1] * 3)});
  }
  EXPECT_EQ(cells.size(), 9u);  // full factorial
}

TEST(LatinHypercube, StratifiesEachDimension) {
  SearchSpace s;
  s.add_float("a", 0.0, 1.0);
  s.add_float("b", 0.0, 1.0);
  LatinHypercubeSearcher lhs(s, 10, 5);
  std::set<int> strata_a, strata_b;
  for (int i = 0; i < 10; ++i) {
    const UnitConfig c = lhs.suggest();
    strata_a.insert(static_cast<int>(c[0] * 10));
    strata_b.insert(static_cast<int>(c[1] * 10));
  }
  EXPECT_EQ(strata_a.size(), 10u);  // one sample per stratum
  EXPECT_EQ(strata_b.size(), 10u);
}

TEST(Evolution, ImprovesOnSphere) {
  const SearchSpace s = small_space();
  EvolutionSearcher evo(s, 10, 11);
  const Objective f = make_sphere_objective(s, 12);
  double first_phase = 1e300, last_phase = 1e300;
  for (int i = 0; i < 120; ++i) {
    const UnitConfig c = evo.suggest();
    const double obj = f(c);
    evo.observe(c, obj);
    if (i < 20) first_phase = std::min(first_phase, obj);
    if (i >= 100) last_phase = std::min(last_phase, obj);
  }
  EXPECT_LT(evo.best().objective, first_phase);
}

// ---- intelligent > naive (the paper's claim) -------------------------------------

double run_search(const std::string& name, const SearchSpace& s,
                  const Objective& f, Index budget, std::uint64_t seed) {
  auto searcher = make_searcher(name, s, seed, budget);
  for (Index i = 0; i < budget; ++i) {
    const UnitConfig c = searcher->suggest();
    searcher->observe(c, f(c));
  }
  return searcher->best().objective;
}

TEST(IntelligentVsNaive, SurrogateBeatsRandomOnSphereMedian) {
  const SearchSpace s = small_space();
  Index wins = 0;
  const Index trials = 7;
  for (Index t = 0; t < trials; ++t) {
    const Objective f = make_sphere_objective(s, 100 + t);
    const double r = run_search("random", s, f, 60, 200 + t);
    const double g = run_search("surrogate", s, f, 60, 300 + t);
    wins += g < r;
  }
  EXPECT_GE(wins, 4) << "surrogate should beat random most of the time";
}

TEST(IntelligentVsNaive, GenerativeBeatsRandomOnValleyMedian) {
  const SearchSpace s = small_space();
  Index wins = 0;
  const Index trials = 7;
  for (Index t = 0; t < trials; ++t) {
    const Objective f = make_embedded_valley_objective(s, 400 + t);
    const double r = run_search("random", s, f, 80, 500 + t);
    const double g = run_search("generative", s, f, 80, 600 + t);
    wins += g < r;
  }
  EXPECT_GE(wins, 4) << "generative search should beat random on structure";
}

// ---- successive halving ------------------------------------------------------------

TEST(SuccessiveHalving, PromotesThroughRungs) {
  const SearchSpace s = small_space();
  SuccessiveHalving asha(std::make_unique<RandomSearcher>(s, 21), 1, 9, 3);
  EXPECT_EQ(asha.num_rungs(), 3);  // budgets 1, 3, 9
  const Objective f = make_sphere_objective(s, 22);
  std::set<Index> budgets;
  for (int i = 0; i < 60; ++i) {
    const auto task = asha.suggest();
    budgets.insert(task.budget);
    // Fidelity model: low budgets see a noisier objective.
    Pcg32 noise(static_cast<std::uint64_t>(i));
    const double obs =
        f(task.config) + 0.5 / static_cast<double>(task.budget) *
                             std::abs(noise.normal());
    asha.observe(task, obs);
  }
  EXPECT_TRUE(budgets.count(1) == 1);
  EXPECT_TRUE(budgets.count(3) == 1) << "rung 1 must be reached";
  EXPECT_TRUE(budgets.count(9) == 1) << "rung 2 must be reached";
  EXPECT_EQ(asha.num_observed(), 60);
  EXPECT_TRUE(std::isfinite(asha.best().objective));
}

TEST(SuccessiveHalving, SpendsFewerEpochsThanFullFidelity) {
  // 60 ASHA tasks at budgets {1,3,9} must consume far fewer epochs than 60
  // full-budget evaluations.
  const SearchSpace s = small_space();
  SuccessiveHalving asha(std::make_unique<RandomSearcher>(s, 31), 1, 9, 3);
  const Objective f = make_sphere_objective(s, 32);
  Index epochs = 0;
  for (int i = 0; i < 60; ++i) {
    const auto task = asha.suggest();
    epochs += task.budget;
    asha.observe(task, f(task.config));
  }
  EXPECT_LT(epochs, 60 * 9 / 2);
}

TEST(SuccessiveHalving, Validation) {
  const SearchSpace s = small_space();
  EXPECT_THROW(SuccessiveHalving(nullptr, 1, 9, 3), Error);
  EXPECT_THROW(
      SuccessiveHalving(std::make_unique<RandomSearcher>(s, 1), 9, 1, 3),
      Error);
  EXPECT_THROW(
      SuccessiveHalving(std::make_unique<RandomSearcher>(s, 1), 1, 9, 1),
      Error);
}

// ---- synthetic objectives ---------------------------------------------------------

TEST(Objectives, SphereMinimumAtPlantedOptimum) {
  const SearchSpace s = small_space();
  Pcg32 rng(41);
  const Objective f = make_sphere_objective(s, 41);
  // f >= 0 everywhere; random points score worse than points near any
  // sampled argmin proxy found by local probing.
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(f(s.sample(rng)), 0.0);
  }
}

TEST(Objectives, RastriginIsMultimodal) {
  const SearchSpace s = small_space();
  const Objective f = make_rastrigin_objective(s, 51);
  Pcg32 rng(52);
  double lo = 1e300, hi = -1e300;
  for (int i = 0; i < 500; ++i) {
    const double v = f(s.sample(rng));
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_GT(hi, lo + 1.0);  // real landscape variation
  EXPECT_GE(lo, 0.0);
}

TEST(Objectives, DimensionalityIsChecked) {
  const SearchSpace s = small_space();
  const Objective f = make_sphere_objective(s, 61);
  EXPECT_THROW(f(UnitConfig{0.5}), Error);
}

}  // namespace
}  // namespace candle::hpo

// Tests for the Residual block (gradient check, shape contract, precision
// propagation) and the executable pipeline forward executor.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/residual.hpp"
#include "nn/trainer.hpp"
#include "parallel/pipeline_exec.hpp"

namespace candle {
namespace {

// ---- Residual ------------------------------------------------------------------

TEST(Residual, ForwardAddsSkipPath) {
  auto block = std::make_unique<Residual>();
  block->add(make_dense(4));
  Pcg32 rng(1);
  block->build({4}, rng);
  // Zero inner weights: y must equal x exactly (pure skip).
  for (Tensor* p : block->params()) p->fill(0.0f);
  Tensor x = Tensor::randn({3, 4}, rng);
  EXPECT_EQ(max_abs_diff(block->forward(x, false), x), 0.0f);
}

TEST(Residual, RejectsShapeChangingInner) {
  auto block = std::make_unique<Residual>();
  block->add(make_dense(5));  // 4 -> 5 breaks the skip addition
  Pcg32 rng(2);
  EXPECT_THROW(block->build({4}, rng), Error);
  auto empty = std::make_unique<Residual>();
  EXPECT_THROW(empty->build({4}, rng), Error);
}

TEST(Residual, GradCheck) {
  auto block = make_residual_mlp_block(5);
  Pcg32 rng(3);
  block->build({5}, rng);
  Tensor x = Tensor::randn({3, 5}, rng);
  Tensor mask = Tensor::randn({3, 5}, rng);
  block->forward(x, false);
  const Tensor dx = block->backward(mask);
  const float eps = 1e-2f;
  auto f = [&] {
    const Tensor y = block->forward(x, false);
    double s = 0;
    for (Index i = 0; i < y.numel(); ++i) {
      s += static_cast<double>(y[i]) * mask[i];
    }
    return s;
  };
  for (Index i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double fp = f();
    x[i] = orig - eps;
    const double fm = f();
    x[i] = orig;
    EXPECT_NEAR(dx[i], (fp - fm) / (2.0 * static_cast<double>(eps)), 2e-2);
  }
}

TEST(Residual, TrainsDeepStack) {
  // 6 residual blocks deep: must still train (plain 12-layer tanh MLPs of
  // this width often stall; the skip path keeps gradients alive).
  Pcg32 rng(4);
  Tensor x = Tensor::randn({128, 8}, rng);
  Tensor y({128});
  for (Index i = 0; i < 128; ++i) {
    y[i] = x.at(i, 0) * x.at(i, 1) > 0 ? 1.0f : 0.0f;
  }
  Model m;
  m.add(make_dense(16)).add(make_relu());
  for (int b = 0; b < 6; ++b) m.add(make_residual_mlp_block(16));
  m.add(make_dense(2));
  m.build({8}, 5);
  SoftmaxCrossEntropy xent;
  Adam opt(3e-3f);
  float loss = 0;
  for (int s = 0; s < 200; ++s) loss = m.train_batch(x, y, xent, opt);
  EXPECT_LT(loss, 0.35f);
  EXPECT_GT(accuracy(m.predict(x), y), 0.85);
}

TEST(Residual, PrecisionPropagatesToInnerLayers) {
  auto block = make_residual_mlp_block(8);
  Pcg32 rng(6);
  block->build({8}, rng);
  Model m;
  m.add(std::move(block));
  // build() was already called on the block; Model::add then build would
  // double-build, so test propagation directly on a fresh model instead.
  Model m2;
  m2.add(make_residual_mlp_block(8));
  m2.build({8}, 7);
  m2.set_compute_precision(Precision::BF16);
  Tensor x = Tensor::randn({32, 8}, rng, 0.0f, 2.0f);
  Model m3;
  m3.add(make_residual_mlp_block(8));
  m3.build({8}, 7);
  const Tensor y32 = m3.forward(x);
  const Tensor y16 = m2.forward(x);
  EXPECT_GT(max_abs_diff(y32, y16), 0.0f)
      << "bf16 must reach the inner Dense layers";
}

TEST(Residual, FlopsAndParamsAggregate) {
  Model m;
  m.add(make_residual_mlp_block(16));
  m.build({16}, 8);
  EXPECT_EQ(m.num_params(), 2 * (16 * 16 + 16));
  EXPECT_DOUBLE_EQ(m.flops_per_sample(), 2.0 * 2.0 * 16.0 * 16.0);
  EXPECT_NE(m.summary().find("residual("), std::string::npos);
}

// ---- pipeline executor ------------------------------------------------------------

Model pipeline_model(std::uint64_t seed) {
  Model m;
  m.add(make_dense(32)).add(make_relu());
  m.add(make_dense(24)).add(make_relu());
  m.add(make_dense(16)).add(make_relu());
  m.add(make_dense(4));
  m.build({12}, seed);
  return m;
}

class PipelineExec : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PipelineExec, MatchesSerialForward) {
  const auto [stages, microbatch] = GetParam();
  Model m = pipeline_model(11);
  const auto plan = parallel::balance_stages(m, stages);
  Pcg32 rng(12);
  Tensor x = Tensor::randn({37, 12}, rng);  // deliberately uneven batch
  const Tensor serial = m.forward(x);
  parallel::PipelineRunStats stats;
  const Tensor piped =
      parallel::pipeline_forward(m, plan, x, microbatch, &stats);
  EXPECT_EQ(max_abs_diff(serial, piped), 0.0f);
  EXPECT_EQ(stats.stages, stages);
  EXPECT_EQ(stats.microbatches, (37 + microbatch - 1) / microbatch);
  EXPECT_GT(stats.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Configs, PipelineExec,
                         ::testing::Values(std::tuple{1, 8},
                                           std::tuple{2, 8},
                                           std::tuple{4, 8},
                                           std::tuple{4, 1},
                                           std::tuple{4, 64},
                                           std::tuple{7, 5}));

TEST(PipelineExecEdge, Validation) {
  Model m = pipeline_model(13);
  const auto plan = parallel::balance_stages(m, 2);
  Pcg32 rng(14);
  Tensor x = Tensor::randn({8, 12}, rng);
  EXPECT_THROW(parallel::pipeline_forward(m, plan, x, 0), Error);
  Model other = pipeline_model(15);
  Model tiny;
  tiny.add(make_dense(2));
  tiny.build({12}, 16);
  const auto tiny_plan = parallel::balance_stages(tiny, 1);
  EXPECT_THROW(parallel::pipeline_forward(m, tiny_plan, x, 4), Error);
}

}  // namespace
}  // namespace candle

// Tests for population-based training and executable dataset staging.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <set>

#include "biodata/staging_io.hpp"
#include "biodata/workloads.hpp"
#include "hpo/pbt.hpp"
#include "nn/metrics.hpp"

namespace candle {
namespace {

// ---- PBT -----------------------------------------------------------------------

Dataset pbt_blobs(Index n, std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({n, 6}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < 6; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  return d;
}

std::function<Model()> pbt_factory(std::uint64_t seed) {
  return [seed] {
    Model m;
    m.add(make_dense(12)).add(make_relu()).add(make_dense(2));
    m.build({6}, seed);
    return m;
  };
}

TEST(Pbt, ImprovesAcrossRoundsAndExploits) {
  const Dataset train = pbt_blobs(256, 1);
  const Dataset val = pbt_blobs(128, 2);
  hpo::PbtOptions opts;
  opts.population = 6;
  opts.rounds = 5;
  opts.epochs_per_round = 2;
  opts.seed = 3;
  SoftmaxCrossEntropy xent;
  Model best;
  const hpo::PbtResult res = hpo::population_based_training(
      pbt_factory(4), train, val, xent, opts, &best);
  ASSERT_EQ(res.final_population.size(), 6u);
  ASSERT_EQ(res.best_loss_per_round.size(), 5u);
  EXPECT_LT(res.best_loss_per_round.back(), res.best_loss_per_round.front());
  EXPECT_GT(res.total_exploits, 0);
  // Population sorted best-first.
  for (std::size_t i = 1; i < res.final_population.size(); ++i) {
    EXPECT_GE(res.final_population[i].val_loss,
              res.final_population[i - 1].val_loss);
  }
  // The exported best member classifies well.
  EXPECT_GT(accuracy(best.predict(val.x), val.y), 0.9);
  // Learning rates stayed in bounds.
  for (const auto& member : res.final_population) {
    EXPECT_GE(member.lr, opts.lr_min);
    EXPECT_LE(member.lr, opts.lr_max);
  }
}

TEST(Pbt, Validation) {
  const Dataset train = pbt_blobs(64, 5);
  const Dataset val = pbt_blobs(32, 6);
  SoftmaxCrossEntropy xent;
  hpo::PbtOptions bad;
  bad.population = 1;
  EXPECT_THROW(hpo::population_based_training(pbt_factory(7), train, val,
                                              xent, bad),
               Error);
  bad = {};
  bad.exploit_fraction = 0.6;
  EXPECT_THROW(hpo::population_based_training(pbt_factory(7), train, val,
                                              xent, bad),
               Error);
}

// ---- staging I/O ---------------------------------------------------------------

TEST(StagingIo, RoundTripsExactly) {
  const std::string path = "/tmp/candle_stage_test.bin";
  biodata::DrugResponseConfig cfg;
  cfg.samples = 64;
  const Dataset d = biodata::make_drug_response(cfg);
  const std::size_t bytes = biodata::stage_dataset(d, path);
  EXPECT_GT(bytes, static_cast<std::size_t>(d.x.numel()) * 4);
  const Dataset back = biodata::load_staged_dataset(path);
  EXPECT_EQ(back.x.shape(), d.x.shape());
  EXPECT_EQ(max_abs_diff(back.x, d.x), 0.0f);
  EXPECT_EQ(max_abs_diff(back.y, d.y), 0.0f);
  std::filesystem::remove(path);
}

TEST(StagingIo, StreamsBatchesAndWraps) {
  const std::string path = "/tmp/candle_stage_test2.bin";
  Dataset d{Tensor({10, 3}), Tensor({10, 1})};
  for (Index i = 0; i < 10; ++i) {
    d.y.at(i, 0) = static_cast<float>(i);
    for (Index j = 0; j < 3; ++j) d.x.at(i, j) = static_cast<float>(i * 3 + j);
  }
  biodata::stage_dataset(d, path);
  biodata::StagedReader reader(path, 4);
  EXPECT_EQ(reader.rows(), 10);
  EXPECT_EQ(reader.sample_shape(), (Shape{3}));
  Dataset b1 = reader.next();
  EXPECT_EQ(b1.size(), 4);
  EXPECT_EQ(b1.y.at(0, 0), 0.0f);
  Dataset b2 = reader.next();
  EXPECT_EQ(b2.y.at(0, 0), 4.0f);
  Dataset b3 = reader.next();  // tail: 2 rows
  EXPECT_EQ(b3.size(), 2);
  EXPECT_EQ(b3.y.at(1, 0), 9.0f);
  Dataset b4 = reader.next();  // wrapped
  EXPECT_EQ(b4.y.at(0, 0), 0.0f);
  // Row contents intact through the streaming path.
  EXPECT_EQ(b4.x.at(0, 2), 2.0f);
  std::filesystem::remove(path);
}

TEST(StagingIo, MeasuresRates) {
  const std::string path = "/tmp/candle_stage_test3.bin";
  biodata::AmrConfig cfg;
  cfg.samples = 500;
  const Dataset d = biodata::make_amr(cfg);
  const auto [write_gbs, read_gbs] =
      biodata::measure_staging_rates(d, path);
  EXPECT_GT(write_gbs, 0.0);
  EXPECT_GT(read_gbs, 0.0);
  std::filesystem::remove(path);
}

TEST(StagingIo, RejectsGarbage) {
  EXPECT_THROW(biodata::load_staged_dataset("/nonexistent.bin"), Error);
  const std::string path = "/tmp/candle_stage_test4.bin";
  {
    std::ofstream os(path);
    os << "garbage";
  }
  EXPECT_THROW(biodata::load_staged_dataset(path), Error);
  EXPECT_THROW(biodata::StagedReader(path, 4), Error);
  Dataset empty{Tensor({0, 2}), Tensor({0})};
  EXPECT_THROW(biodata::stage_dataset(empty, path), Error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace candle

// Machine-model tests: roofline algebra, collective closed forms, scaling
// model structure (the qualitative behaviours the experiments depend on),
// and the staging model.
#include <gtest/gtest.h>

#include <cmath>

#include "hpcsim/fabric.hpp"
#include "hpcsim/machine.hpp"
#include "hpcsim/perfmodel.hpp"
#include "hpcsim/staging.hpp"

namespace candle::hpcsim {
namespace {

TEST(NodeSpec, PresetsAreSane) {
  for (const NodeSpec& n : all_node_presets()) {
    EXPECT_GT(n.peak_fp32_gflops, 0.0) << n.name;
    EXPECT_GE(n.peak_fp16_gflops, n.peak_fp32_gflops) << n.name;
    EXPECT_GE(n.peak_fp32_gflops, n.peak_fp64_gflops) << n.name;
    ASSERT_FALSE(n.tiers.empty());
    // Tiers are ordered nearest-first: bandwidth decreases outward.
    for (std::size_t t = 1; t < n.tiers.size(); ++t) {
      EXPECT_LT(n.tiers[t].bandwidth_gbs, n.tiers[t - 1].bandwidth_gbs)
          << n.name << " tier " << t;
      EXPECT_GE(n.tiers[t].pj_per_byte, n.tiers[t - 1].pj_per_byte);
    }
  }
}

TEST(NodeSpec, TierLookup) {
  const NodeSpec n = summit_node();
  EXPECT_EQ(n.tier_named("HBM").name, "HBM");
  EXPECT_EQ(n.nearest().name, "HBM");
  EXPECT_THROW(n.tier_named("L1"), Error);
  EXPECT_THROW(n.tier(99), Error);
}

TEST(NodeSpec, EnergyScalesWithFormatWidth) {
  const NodeSpec n = future_node();
  EXPECT_DOUBLE_EQ(n.pj_per_flop(Precision::FP32), n.pj_per_fp32_flop);
  EXPECT_DOUBLE_EQ(n.pj_per_flop(Precision::FP16), n.pj_per_fp32_flop / 2);
  EXPECT_DOUBLE_EQ(n.pj_per_flop(Precision::INT8), n.pj_per_fp32_flop / 4);
  EXPECT_DOUBLE_EQ(n.pj_per_flop(Precision::FP64), n.pj_per_fp32_flop * 2);
}

TEST(Roofline, ComputeBoundKernel) {
  const NodeSpec n = summit_node();
  // GEMM-like: high arithmetic intensity.
  const double flops = 1e12, bytes = 1e8;
  const KernelEstimate e = roofline(n, flops, bytes, Precision::FP32);
  EXPECT_FALSE(e.memory_bound);
  EXPECT_NEAR(e.time_s, flops / (n.peak_fp32_gflops * 1e9), 1e-9);
  EXPECT_NEAR(e.achieved_gflops, n.peak_fp32_gflops, 1.0);
}

TEST(Roofline, MemoryBoundKernel) {
  const NodeSpec n = summit_node();
  // GEMV-like: intensity ~2 flops/byte, far below the fp32 ridge (~17).
  const double bytes = 1e9, flops = 2e9;
  const KernelEstimate e = roofline(n, flops, bytes, Precision::FP32);
  EXPECT_TRUE(e.memory_bound);
  EXPECT_LT(e.achieved_gflops, n.peak_fp32_gflops / 4);
}

TEST(Roofline, RidgeIntensityOrdering) {
  const NodeSpec n = future_node();
  // Faster formats need more intensity to stay compute-bound.
  EXPECT_GT(ridge_intensity(n, Precision::FP16),
            ridge_intensity(n, Precision::FP32));
  EXPECT_GT(ridge_intensity(n, Precision::INT8),
            ridge_intensity(n, Precision::FP16));
  // Farther tiers raise the ridge further.
  EXPECT_GT(ridge_intensity(n, Precision::FP32, 1),
            ridge_intensity(n, Precision::FP32, 0));
}

TEST(Roofline, ReducedPrecisionSpeedsUpComputeBoundOnly) {
  const NodeSpec n = future_node();
  const double flops = 1e13, small_bytes = 1e7;
  const double t32 =
      roofline(n, flops, small_bytes, Precision::FP32).time_s;
  const double t16 =
      roofline(n, flops, small_bytes, Precision::FP16).time_s;
  EXPECT_NEAR(t32 / t16, 4.0, 0.1);  // 240/60 TF
  // Memory-bound kernel: format does not help.
  const double big_bytes = 1e11;
  const double m32 = roofline(n, 1e9, big_bytes, Precision::FP32).time_s;
  const double m16 = roofline(n, 1e9, big_bytes, Precision::FP16).time_s;
  EXPECT_NEAR(m32 / m16, 1.0, 1e-6);
}

TEST(Roofline, RejectsNegativeWork) {
  EXPECT_THROW(roofline(summit_node(), -1.0, 0.0, Precision::FP32), Error);
}

// ---- fabric --------------------------------------------------------------------

TEST(Fabric, AverageHops) {
  Fabric ft = fat_tree_fabric();
  EXPECT_EQ(ft.average_hops(1), 0.0);
  EXPECT_GE(ft.average_hops(1024), ft.average_hops(16));
  Fabric t = torus_fabric();
  // 4096-node torus: k = 16, avg hops = 12.
  EXPECT_NEAR(t.average_hops(4096), 12.0, 1e-9);
  Fabric d = dragonfly_fabric();
  EXPECT_EQ(d.average_hops(100000), 3.0);  // diameter-bounded
}

TEST(Collectives, SinglePartyIsFree) {
  const Fabric f = fat_tree_fabric();
  for (AllReduceAlgo a : {AllReduceAlgo::Ring, AllReduceAlgo::BinomialTree,
                          AllReduceAlgo::HalvingDoubling}) {
    EXPECT_EQ(allreduce_time_s(f, a, 1, 1e9), 0.0);
  }
  EXPECT_EQ(allgather_time_s(f, 1, 1e9), 0.0);
  EXPECT_EQ(broadcast_time_s(f, 1, 1e9), 0.0);
}

TEST(Collectives, RingMatchesClosedForm) {
  const Fabric f = fat_tree_fabric();
  const Index p = 64;
  const double n = 4e8;  // 100M fp32 gradients
  const double alpha = f.message_latency_s(1.0);
  const double beta = f.seconds_per_byte();
  const double expected =
      2.0 * (p - 1) * alpha + 2.0 * (p - 1) / static_cast<double>(p) * n * beta;
  EXPECT_NEAR(allreduce_time_s(f, AllReduceAlgo::Ring, p, n), expected,
              expected * 1e-12);
}

TEST(Collectives, TreeMatchesClosedForm) {
  const Fabric f = fat_tree_fabric();
  const Index p = 64;
  const double n = 1e6;
  const double alpha = f.message_latency_s(f.average_hops(p));
  const double beta = f.seconds_per_byte();
  const double expected = 2.0 * 6.0 * (alpha + n * beta);
  EXPECT_NEAR(allreduce_time_s(f, AllReduceAlgo::BinomialTree, p, n),
              expected, expected * 1e-12);
}

TEST(Collectives, BandwidthOptimalAlgosWinLargeMessages) {
  const Fabric f = fat_tree_fabric();
  const Index p = 1024;
  // Large gradient vector: the 2(p-1)/p * n bandwidth term dominates, so a
  // bandwidth-optimal algorithm (ring or halving-doubling — identical beta
  // term, HD has fewer latency rounds in an uncontended model) must win
  // over the tree's 2 log2(p) * n term.
  EXPECT_NE(best_allreduce_algo(f, p, 4e8), AllReduceAlgo::BinomialTree);
  const double tree = allreduce_time_s(f, AllReduceAlgo::BinomialTree, p, 4e8);
  const double ring = allreduce_time_s(f, AllReduceAlgo::Ring, p, 4e8);
  EXPECT_GT(tree, ring * 5.0);
  // Tiny control message: latency dominates -> log-round algorithms beat
  // the ring's 2(p-1) alpha chain.
  EXPECT_NE(best_allreduce_algo(f, p, 64.0), AllReduceAlgo::Ring);
}

TEST(Collectives, TimeMonotoneInSizeAndParties) {
  const Fabric f = dragonfly_fabric();
  for (AllReduceAlgo a : {AllReduceAlgo::Ring, AllReduceAlgo::BinomialTree,
                          AllReduceAlgo::HalvingDoubling}) {
    double prev = 0.0;
    for (double bytes : {1e3, 1e6, 1e9}) {
      const double t = allreduce_time_s(f, a, 16, bytes);
      EXPECT_GT(t, prev);
      prev = t;
    }
    EXPECT_LT(allreduce_time_s(f, a, 4, 1e6),
              allreduce_time_s(f, a, 256, 1e6));
  }
}

TEST(Collectives, WireBytesAccounting) {
  // Ring moves 2(p-1)/p * n per rank; tree moves 2 log2(p) * n.
  EXPECT_NEAR(allreduce_bytes_on_wire(AllReduceAlgo::Ring, 4, 100.0), 150.0,
              1e-9);
  EXPECT_NEAR(allreduce_bytes_on_wire(AllReduceAlgo::BinomialTree, 4, 100.0),
              400.0, 1e-9);
  EXPECT_EQ(allreduce_bytes_on_wire(AllReduceAlgo::Ring, 1, 100.0), 0.0);
}

// ---- perf model -----------------------------------------------------------------

TrainingWorkload toy_workload() {
  TrainingWorkload w;
  w.name = "toy";
  w.flops_per_sample = 2e9;  // ~1B-MAC model
  w.parameters = 5e7;
  w.bytes_per_sample = 6e4;
  w.activation_bytes_per_sample = 4e5;
  return w;
}

TEST(GemmEfficiency, SaturatingShape) {
  EXPECT_EQ(gemm_efficiency(0), 0.0);
  EXPECT_NEAR(gemm_efficiency(32), 0.5, 1e-9);
  EXPECT_GT(gemm_efficiency(256), 0.88);
  EXPECT_LT(gemm_efficiency(256), 1.0);
  EXPECT_GT(gemm_efficiency(64), gemm_efficiency(8));
}

TEST(PerfModel, StepEstimatePositiveAndDecomposed) {
  ParallelPlan plan;
  plan.data_replicas = 64;
  plan.batch_per_replica = 32;
  const StepEstimate e =
      estimate_step(summit_node(), fat_tree_fabric(), toy_workload(), plan);
  EXPECT_GT(e.compute_s, 0.0);
  EXPECT_GT(e.dp_comm_s, 0.0);
  EXPECT_EQ(e.mp_comm_s, 0.0);
  EXPECT_GE(e.step_s, e.compute_s);
  EXPECT_GE(e.step_s, e.dp_comm_s);
  EXPECT_GT(e.energy_j, 0.0);
  EXPECT_GT(e.samples_per_s, 0.0);
  EXPECT_GT(e.flops_utilization, 0.0);
  EXPECT_LE(e.flops_utilization, 1.0);
}

TEST(PerfModel, StrongScalingEfficiencyDecays) {
  const auto pts = strong_scaling(summit_node(), fat_tree_fabric(),
                                  toy_workload(), 4096,
                                  {1, 4, 16, 64, 256, 1024, 4096});
  ASSERT_EQ(pts.size(), 7u);
  EXPECT_NEAR(pts[0].efficiency, 1.0, 1e-9);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LT(pts[i].efficiency, pts[i - 1].efficiency + 1e-12)
        << "efficiency must decay at " << pts[i].nodes;
  }
  // The headline claim: strong scaling collapses at high node counts.
  EXPECT_LT(pts.back().efficiency, 0.3);
  // Communication fraction grows monotonically.
  EXPECT_GT(pts.back().comm_fraction, pts[1].comm_fraction);
}

TEST(PerfModel, WeakScalingHoldsUpMuchBetter) {
  const std::vector<Index> nodes = {1, 16, 256, 4096};
  const auto strong = strong_scaling(summit_node(), fat_tree_fabric(),
                                     toy_workload(), 4096, nodes);
  const auto weak = weak_scaling(summit_node(), fat_tree_fabric(),
                                 toy_workload(), 64, nodes);
  EXPECT_GT(weak.back().efficiency, strong.back().efficiency * 1.5);
  // Even weak scaling pays the (batch-independent) gradient all-reduce, so
  // ~45% at 4096 nodes is the realistic outcome for a 50M-param model on
  // EDR-class links, not a model bug.
  EXPECT_GT(weak.back().efficiency, 0.35);
}

TEST(PerfModel, ReducedPrecisionRaisesComputeBoundThroughput) {
  // Single replica (no gradient all-reduce): the 4x fp16 rate shows through.
  ParallelPlan p32, p16;
  p32.data_replicas = p16.data_replicas = 1;
  p32.batch_per_replica = p16.batch_per_replica = 256;
  p16.precision = Precision::FP16;
  const StepEstimate e32 =
      estimate_step(future_node(), fat_tree_fabric(), toy_workload(), p32);
  const StepEstimate e16 =
      estimate_step(future_node(), fat_tree_fabric(), toy_workload(), p16);
  EXPECT_GT(e16.samples_per_s, e32.samples_per_s * 2.0);
  EXPECT_LT(e16.energy_j, e32.energy_j);
}

TEST(PerfModel, ReducedPrecisionGainsShrinkWhenCommBound) {
  // At 16 replicas the fp32 gradient all-reduce dominates, collapsing the
  // fp16 advantage — the reason the paper couples precision with fabric.
  ParallelPlan p32, p16;
  p32.data_replicas = p16.data_replicas = 16;
  p32.batch_per_replica = p16.batch_per_replica = 64;
  p16.precision = Precision::FP16;
  const StepEstimate e32 =
      estimate_step(future_node(), fat_tree_fabric(), toy_workload(), p32);
  const StepEstimate e16 =
      estimate_step(future_node(), fat_tree_fabric(), toy_workload(), p16);
  const double comm_bound_gain = e16.samples_per_s / e32.samples_per_s;
  EXPECT_GT(comm_bound_gain, 1.0);
  EXPECT_LT(comm_bound_gain, 2.0);
  // Halving the gradient wire format recovers part of the loss.
  p16.gradient_wire_bytes = 2.0;
  const StepEstimate e16c =
      estimate_step(future_node(), fat_tree_fabric(), toy_workload(), p16);
  EXPECT_GT(e16c.samples_per_s, e16.samples_per_s);
}

TEST(PerfModel, HybridBeatsPureDataParallelAtScale) {
  // At 4096 nodes with a modest global batch, pure data parallelism starves
  // each replica; the best plan shards the model.
  const TrainingWorkload w = toy_workload();
  const Index nodes = 4096, batch = 4096;
  const ParallelPlan best = best_hybrid_plan(summit_node(),
                                             fat_tree_fabric(), w, nodes,
                                             batch);
  ParallelPlan pure;
  pure.data_replicas = nodes;
  pure.batch_per_replica = 1;
  const StepEstimate e_best =
      estimate_step(summit_node(), fat_tree_fabric(), w, best);
  const StepEstimate e_pure =
      estimate_step(summit_node(), fat_tree_fabric(), w, pure);
  EXPECT_GE(e_best.samples_per_s, e_pure.samples_per_s);
  EXPECT_GT(best.model_shards, 1) << "expected a hybrid decomposition";
}

TEST(PerfModel, PlanValidation) {
  ParallelPlan bad;
  bad.data_replicas = 0;
  EXPECT_THROW(
      estimate_step(summit_node(), fat_tree_fabric(), toy_workload(), bad),
      Error);
  TrainingWorkload empty;
  ParallelPlan ok;
  EXPECT_THROW(estimate_step(summit_node(), fat_tree_fabric(), empty, ok),
               Error);
}

TEST(PerfModel, CapacitySpillSlowsTheStep) {
  // A model too large for HBM must spill to DDR and slow down.
  TrainingWorkload huge = toy_workload();
  huge.parameters = 2e9;  // 8 GB x3 resident >> summit's 16 GB HBM
  ParallelPlan plan;
  plan.batch_per_replica = 4;  // keep compute small so memory binds
  const StepEstimate spilled =
      estimate_step(summit_node(), fat_tree_fabric(), huge, plan);
  EXPECT_TRUE(spilled.spills_nearest_tier);
  TrainingWorkload fits = toy_workload();
  ParallelPlan plan2;
  plan2.batch_per_replica = 4;
  const StepEstimate resident =
      estimate_step(summit_node(), fat_tree_fabric(), fits, plan2);
  EXPECT_FALSE(resident.spills_nearest_tier);
  // Sharding the model back under the HBM capacity removes the spill.
  ParallelPlan sharded = plan;
  sharded.model_shards = 8;
  const StepEstimate recovered =
      estimate_step(summit_node(), fat_tree_fabric(), huge, sharded);
  EXPECT_FALSE(recovered.spills_nearest_tier);
}

// ---- staging --------------------------------------------------------------------

StagingConfig staging_cfg() {
  StagingConfig c;
  c.dataset_gb = 512.0;
  c.nodes = 128;
  c.epochs = 10;
  return c;
}

TEST(Staging, NvramCacheAmortizesAfterFirstEpoch) {
  const StagingConfig cfg = staging_cfg();
  const double e0 =
      epoch_ingest_time_s(StagingStrategy::NvramCached, cfg, 0);
  const double e1 =
      epoch_ingest_time_s(StagingStrategy::NvramCached, cfg, 1);
  EXPECT_GT(e0, e1 * 2.0);
  EXPECT_NEAR(e0, epoch_ingest_time_s(StagingStrategy::PfsEveryEpoch, cfg, 0),
              1e-9);
}

TEST(Staging, PfsCampaignScalesWithEpochs) {
  StagingConfig cfg = staging_cfg();
  const double t10 =
      campaign_ingest_time_s(StagingStrategy::PfsEveryEpoch, cfg);
  cfg.epochs = 20;
  const double t20 =
      campaign_ingest_time_s(StagingStrategy::PfsEveryEpoch, cfg);
  EXPECT_NEAR(t20, 2.0 * t10, 1e-6);
}

TEST(Staging, NvramWinsMultiEpochCampaigns) {
  const StagingConfig cfg = staging_cfg();
  const double pfs = campaign_ingest_time_s(StagingStrategy::PfsEveryEpoch, cfg);
  const double nvram = campaign_ingest_time_s(StagingStrategy::NvramCached, cfg);
  EXPECT_LT(nvram, pfs);
  EXPECT_NE(best_staging_strategy(cfg), StagingStrategy::PfsEveryEpoch);
}

TEST(Staging, SpillsWhenShardExceedsNvram) {
  StagingConfig cfg = staging_cfg();
  cfg.nvram_capacity_gb = 1.0;  // shard is 4 GB -> 3 GB spills
  const double cached = epoch_ingest_time_s(StagingStrategy::NvramCached, cfg, 1);
  const double pfs = epoch_ingest_time_s(StagingStrategy::PfsEveryEpoch, cfg, 1);
  EXPECT_GT(cached, 0.5 * pfs);  // mostly PFS-bound again
  EXPECT_LT(cached, pfs + 1e-9);
}

TEST(Staging, EnergyRanksNvramBelowPfs) {
  const StagingConfig cfg = staging_cfg();
  const NodeSpec n = summit_node();
  const double e_pfs =
      campaign_ingest_energy_j(StagingStrategy::PfsEveryEpoch, cfg, n);
  const double e_nvram =
      campaign_ingest_energy_j(StagingStrategy::NvramCached, cfg, n);
  EXPECT_LT(e_nvram, e_pfs);
}

TEST(Staging, Validation) {
  StagingConfig bad = staging_cfg();
  bad.nodes = 0;
  EXPECT_THROW(epoch_ingest_time_s(StagingStrategy::PfsEveryEpoch, bad, 0),
               Error);
  StagingConfig ok = staging_cfg();
  EXPECT_THROW(epoch_ingest_time_s(StagingStrategy::PfsEveryEpoch, ok, 10),
               Error);
}

}  // namespace
}  // namespace candle::hpcsim

// Unit tests for the Tensor storage class.
#include <gtest/gtest.h>

#include <cmath>

#include "core/tensor.hpp"
#include "runtime/error.hpp"

namespace candle {
namespace {

TEST(Tensor, DefaultIsScalarZero) {
  Tensor t;
  EXPECT_EQ(t.ndim(), 0);
  EXPECT_EQ(t.numel(), 1);
  EXPECT_EQ(t[0], 0.0f);
}

TEST(Tensor, ZerosAndFull) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  for (Index i = 0; i < 6; ++i) EXPECT_EQ(z[i], 0.0f);
  Tensor f = Tensor::full({4}, 2.5f);
  for (Index i = 0; i < 4; ++i) EXPECT_EQ(f[i], 2.5f);
}

TEST(Tensor, FromValuesValidatesCount) {
  Tensor t({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_THROW(Tensor({2, 2}, {1, 2, 3}), Error);
}

TEST(Tensor, MultidimAccessIsRowMajor) {
  Tensor t({2, 3, 4});
  t.at(1, 2, 3) = 7.0f;
  EXPECT_EQ(t[1 * 12 + 2 * 4 + 3], 7.0f);
  EXPECT_THROW(t.at(2, 0, 0), Error);
  EXPECT_THROW(t.at(0, 0), Error);  // wrong rank
}

TEST(Tensor, DimSupportsNegativeIndex) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t.dim(-1), 4);
  EXPECT_EQ(t.dim(-3), 2);
  EXPECT_THROW(t.dim(3), Error);
  EXPECT_THROW(t.dim(-4), Error);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  t.reshape({3, 2});
  EXPECT_EQ(t.at(2, 1), 5.0f);
  EXPECT_THROW(t.reshape({4, 2}), Error);
}

TEST(Tensor, ReshapeInfersMinusOne) {
  Tensor t({2, 6});
  t.reshape({-1, 3});
  EXPECT_EQ(t.dim(0), 4);
  EXPECT_EQ(t.dim(1), 3);
  EXPECT_THROW(t.reshape({-1, -1}), Error);
  EXPECT_THROW(t.reshape({-1, 5}), Error);
}

TEST(Tensor, RowReturnsView) {
  Tensor t({3, 4});
  auto r = t.row(1);
  ASSERT_EQ(r.size(), 4u);
  r[2] = 9.0f;
  EXPECT_EQ(t.at(1, 2), 9.0f);
  EXPECT_THROW(t.row(3), Error);
  Tensor t3({2, 2, 2});
  EXPECT_THROW(t3.row(0), Error);
}

TEST(Tensor, Dim0SliceSpansOneLeadingRowAtAnyRank) {
  // Unlike row(), dim0_slice works at any rank >= 1: the slice covers
  // everything under one leading-dim index (the serving slot matrix's
  // per-sample view).
  Tensor t3({2, 2, 2});
  auto s = t3.dim0_slice(1);
  ASSERT_EQ(s.size(), 4u);
  s[3] = 7.0f;
  EXPECT_EQ(t3.at(1, 1, 1), 7.0f);
  Tensor t1({3});
  ASSERT_EQ(t1.dim0_slice(2).size(), 1u);
  EXPECT_THROW(t3.dim0_slice(2), Error);
  EXPECT_THROW(t3.dim0_slice(-1), Error);
  const Tensor& ct = t3;
  EXPECT_EQ(ct.dim0_slice(1)[3], 7.0f);
}

TEST(Tensor, FillScaleAxpy) {
  Tensor a = Tensor::full({4}, 2.0f);
  Tensor b = Tensor::full({4}, 3.0f);
  a.axpy(2.0f, b);  // 2 + 2*3 = 8
  for (Index i = 0; i < 4; ++i) EXPECT_EQ(a[i], 8.0f);
  a.scale(0.5f);
  for (Index i = 0; i < 4; ++i) EXPECT_EQ(a[i], 4.0f);
  a.fill(1.0f);
  EXPECT_EQ(a.sum(), 4.0f);
  Tensor c({3});
  EXPECT_THROW(a.axpy(1.0f, c), Error);
}

TEST(Tensor, Reductions) {
  Tensor t({5}, {3, -1, 4, -1, 5});
  EXPECT_FLOAT_EQ(t.sum(), 10.0f);
  EXPECT_FLOAT_EQ(t.mean(), 2.0f);
  EXPECT_EQ(t.min(), -1.0f);
  EXPECT_EQ(t.max(), 5.0f);
  EXPECT_EQ(t.argmax(), 4);
  EXPECT_FLOAT_EQ(t.l2_norm(), std::sqrt(9.0f + 1 + 16 + 1 + 25));
}

TEST(Tensor, RandnMatchesMoments) {
  Pcg32 rng(123);
  Tensor t = Tensor::randn({10000}, rng, 1.0f, 2.0f);
  EXPECT_NEAR(t.mean(), 1.0f, 0.1f);
  double var = 0;
  for (Index i = 0; i < t.numel(); ++i) {
    const double d = t[i] - t.mean();
    var += d * d;
  }
  var /= static_cast<double>(t.numel());
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Tensor, UniformInRange) {
  Pcg32 rng(7);
  Tensor t = Tensor::uniform({1000}, rng, -2.0f, 3.0f);
  EXPECT_GE(t.min(), -2.0f);
  EXPECT_LT(t.max(), 3.0f);
  EXPECT_NEAR(t.mean(), 0.5f, 0.2f);
}

TEST(Tensor, RandnDeterministicPerSeed) {
  Pcg32 r1(99), r2(99);
  Tensor a = Tensor::randn({100}, r1);
  Tensor b = Tensor::randn({100}, r2);
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
}

TEST(Tensor, CopyFromAndMaxAbsDiff) {
  Pcg32 rng(1);
  Tensor a = Tensor::randn({3, 3}, rng);
  Tensor b = Tensor::zeros({3, 3});
  b.copy_from(a);
  EXPECT_EQ(max_abs_diff(a, b), 0.0f);
  b[4] += 0.5f;
  EXPECT_FLOAT_EQ(max_abs_diff(a, b), 0.5f);
  Tensor c({9});
  EXPECT_THROW(max_abs_diff(a, c), Error);
}

TEST(Tensor, OfMakesRank1) {
  Tensor t = Tensor::of({1.5f, 2.5f});
  EXPECT_EQ(t.ndim(), 1);
  EXPECT_EQ(t.dim(0), 2);
  EXPECT_EQ(t[1], 2.5f);
}

TEST(ShapeUtils, NumelAndToString) {
  EXPECT_EQ(shape_numel({}), 1);
  EXPECT_EQ(shape_numel({0, 5}), 0);
  EXPECT_EQ(shape_numel({2, 3, 4}), 24);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
  EXPECT_THROW(shape_numel({-1}), Error);
}

}  // namespace
}  // namespace candle

// Unit + property tests for reduced-precision format emulation.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/formats.hpp"
#include "runtime/rng.hpp"

namespace candle {
namespace {

TEST(Formats, NamesAndBits) {
  EXPECT_EQ(precision_name(Precision::FP64), "fp64");
  EXPECT_EQ(precision_name(Precision::FP16), "fp16");
  EXPECT_EQ(precision_bits(Precision::FP64), 64);
  EXPECT_EQ(precision_bits(Precision::BF16), 16);
  EXPECT_EQ(precision_bits(Precision::INT8), 8);
  EXPECT_EQ(all_precisions().size(), 5u);
}

TEST(Half, ExactValuesRoundTrip) {
  for (float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 1024.0f, -0.25f, 65504.0f,
                  6.103515625e-05f /* smallest normal */}) {
    EXPECT_EQ(half_bits_to_float(float_to_half_bits(f)), f) << f;
  }
}

TEST(Half, KnownBitPatterns) {
  EXPECT_EQ(float_to_half_bits(0.0f), 0x0000);
  EXPECT_EQ(float_to_half_bits(-0.0f), 0x8000);
  EXPECT_EQ(float_to_half_bits(1.0f), 0x3c00);
  EXPECT_EQ(float_to_half_bits(-2.0f), 0xc000);
  EXPECT_EQ(float_to_half_bits(65504.0f), 0x7bff);  // max finite half
}

TEST(Half, OverflowGoesToInfinity) {
  EXPECT_EQ(float_to_half_bits(70000.0f), 0x7c00);
  EXPECT_EQ(float_to_half_bits(-70000.0f), 0xfc00);
  EXPECT_TRUE(std::isinf(round_fp16(1e10f)));
  EXPECT_TRUE(std::isinf(round_fp16(std::numeric_limits<float>::infinity())));
}

TEST(Half, NanPreserved) {
  EXPECT_TRUE(std::isnan(round_fp16(std::nanf(""))));
}

TEST(Half, SubnormalsRepresented) {
  const float smallest_sub = 5.960464477539063e-08f;  // 2^-24
  EXPECT_EQ(round_fp16(smallest_sub), smallest_sub);
  // Below half the smallest subnormal flushes to zero.
  EXPECT_EQ(round_fp16(smallest_sub / 4.0f), 0.0f);
}

TEST(Half, RoundToNearestEven) {
  // 1 + 2^-11 is exactly between 1.0 and the next half (1 + 2^-10):
  // must round to even mantissa, i.e. 1.0.
  EXPECT_EQ(round_fp16(1.0f + 4.8828125e-4f), 1.0f);
  // 1 + 3*2^-11 is between 1+2^-10 and 1+2^-9: even neighbour is 1+2^-9.
  EXPECT_EQ(round_fp16(1.0f + 3 * 4.8828125e-4f), 1.0f + 2 * 9.765625e-4f);
}

TEST(Half, RelativeErrorBounded) {
  Pcg32 rng(5);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.normal(0.0, 10.0));
    const float r = round_fp16(x);
    if (x != 0.0f && std::abs(x) > 1e-4f) {
      EXPECT_LE(std::abs(r - x) / std::abs(x),
                precision_epsilon(Precision::FP16));
    }
  }
}

TEST(Bf16, ExactValuesRoundTrip) {
  for (float f : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f,
                  1.7014118346046923e+38f /* 2^127 */,
                  1.1754944e-38f /* smallest fp32 normal, exact in bf16 */}) {
    EXPECT_EQ(round_bf16(f), f) << f;
  }
}

TEST(Bf16, RelativeErrorBounded) {
  Pcg32 rng(6);
  for (int i = 0; i < 10000; ++i) {
    const float x = static_cast<float>(rng.normal(0.0, 1e6));
    const float r = round_bf16(x);
    if (x != 0.0f) {
      EXPECT_LE(std::abs(r - x) / std::abs(x),
                precision_epsilon(Precision::BF16));
    }
  }
}

TEST(Bf16, NanSurvivesTruncation) {
  EXPECT_TRUE(std::isnan(round_bf16(std::nanf(""))));
  EXPECT_TRUE(std::isinf(round_bf16(std::numeric_limits<float>::infinity())));
}

TEST(Bf16, RoundToNearestEvenAtHalfway) {
  // 1.0 has bf16 bits 0x3f80; halfway to next representable (0x3f81 -> float
  // bits 0x3f810000) is float bits 0x3f808000.
  const float halfway = __builtin_bit_cast(float, 0x3f808000u);
  EXPECT_EQ(round_bf16(halfway), 1.0f);  // ties to even (0x3f80)
}

TEST(StochasticRounding, IsUnbiasedFp16) {
  Pcg32 rng(7);
  const float x = 1.0f + 0.3f * 9.765625e-4f;  // 30% of the way up a ulp
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += round_fp16_stochastic(x, rng);
  EXPECT_NEAR(sum / n, static_cast<double>(x), 5e-5);
}

TEST(StochasticRounding, IsUnbiasedBf16) {
  Pcg32 rng(8);
  const float x = 1.0f + 0.7f * 0.0078125f;  // between bf16 representables
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += round_bf16_stochastic(x, rng);
  EXPECT_NEAR(sum / n, static_cast<double>(x), 5e-4);
}

TEST(StochasticRounding, ExactValuesPassThrough) {
  Pcg32 rng(9);
  EXPECT_EQ(round_fp16_stochastic(1.0f, rng), 1.0f);
  EXPECT_EQ(round_bf16_stochastic(2.0f, rng), 2.0f);
  EXPECT_EQ(round_fp16_stochastic(0.0f, rng), 0.0f);
}

TEST(Int8, QuantizeDequantizeBoundedError) {
  Pcg32 rng(10);
  std::vector<float> x(1000);
  for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 3.0));
  const QuantizedTensor q = quantize_int8(x);
  float amax = 0.0f;
  for (float v : x) amax = std::max(amax, std::abs(v));
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_LE(std::abs(q.dequant(i) - x[i]), 0.5f * amax / 127.0f + 1e-6f);
  }
}

TEST(Int8, ZeroTensorHasUnitScale) {
  std::vector<float> x(10, 0.0f);
  const QuantizedTensor q = quantize_int8(x);
  EXPECT_EQ(q.scale, 1.0f);
  for (auto v : q.values) EXPECT_EQ(v, 0);
}

TEST(Int8, SymmetricRange) {
  std::vector<float> x = {-10.0f, 10.0f};
  const QuantizedTensor q = quantize_int8(x);
  EXPECT_EQ(q.values[0], -127);
  EXPECT_EQ(q.values[1], 127);
}

TEST(RoundThrough, Fp32IsIdentity) {
  Pcg32 rng(11);
  std::vector<float> x(100);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::vector<float> orig = x;
  round_through(Precision::FP32, x);
  EXPECT_EQ(x, orig);
  round_through(Precision::FP64, x);
  EXPECT_EQ(x, orig);
}

TEST(RoundThrough, ReducedFormatsLoseInformation) {
  std::vector<float> x = {1.000244140625f};  // 1 + 2^-12: below fp16 ulp at 1
  auto fp16 = rounded_copy(Precision::FP16, x);
  EXPECT_EQ(fp16[0], 1.0f);
  auto bf16 = rounded_copy(Precision::BF16, x);
  EXPECT_EQ(bf16[0], 1.0f);
}

// Property sweep: round_through is idempotent for every format.
class RoundThroughIdempotent : public ::testing::TestWithParam<Precision> {};

TEST_P(RoundThroughIdempotent, RoundingTwiceEqualsOnce) {
  Pcg32 rng(12);
  std::vector<float> x(512);
  for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 5.0));
  auto once = rounded_copy(GetParam(), x);
  auto twice = rounded_copy(GetParam(), once);
  // INT8 re-quantizes with a new scale; the scale is preserved because the
  // max element is exactly representable, so idempotence still holds.
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(once[i], twice[i], 1e-6f) << precision_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, RoundThroughIdempotent,
                         ::testing::Values(Precision::FP64, Precision::FP32,
                                           Precision::BF16, Precision::FP16,
                                           Precision::INT8),
                         [](const auto& pinfo) {
                           return precision_name(pinfo.param);
                         });

// Property sweep: monotonicity — rounding preserves order of well-separated
// values for every format.
class RoundThroughMonotone : public ::testing::TestWithParam<Precision> {};

TEST_P(RoundThroughMonotone, PreservesOrderOfSeparatedValues) {
  std::vector<float> x;
  for (int i = -20; i <= 20; ++i) x.push_back(static_cast<float>(i) * 0.5f);
  auto r = rounded_copy(GetParam(), x);
  for (std::size_t i = 1; i < r.size(); ++i) {
    EXPECT_LE(r[i - 1], r[i]) << precision_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, RoundThroughMonotone,
                         ::testing::Values(Precision::FP64, Precision::FP32,
                                           Precision::BF16, Precision::FP16,
                                           Precision::INT8),
                         [](const auto& pinfo) {
                           return precision_name(pinfo.param);
                         });

// Exhaustive: every finite half round-trips bit-exactly through float.
TEST(Half, AllFiniteHalvesRoundTripExhaustively) {
  for (std::uint32_t bits = 0; bits < 0x10000u; ++bits) {
    const auto h = static_cast<std::uint16_t>(bits);
    const float f = half_bits_to_float(h);
    if (std::isnan(f)) continue;  // NaN payloads may be quieted
    EXPECT_EQ(float_to_half_bits(f), h) << std::hex << bits;
  }
}

}  // namespace
}  // namespace candle

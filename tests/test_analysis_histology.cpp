// Tests for hyperparameter-importance analysis and the histology imaging
// workload (Conv2D end-to-end).
#include <gtest/gtest.h>

#include <cmath>

#include "biodata/workloads.hpp"
#include "hpo/analysis.hpp"
#include "hpo/objectives.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace candle {
namespace {

// ---- parameter importance --------------------------------------------------------

TEST(Importance, RecoversTheDominantParameter) {
  // Objective depends strongly on dim 0, weakly on dim 1, not on dim 2/3.
  hpo::SearchSpace space;
  space.add_float("strong", 0, 1);
  space.add_float("weak", 0, 1);
  space.add_float("inert_a", 0, 1);
  space.add_float("inert_b", 0, 1);
  Pcg32 rng(1);
  std::vector<hpo::Observation> history;
  for (int i = 0; i < 600; ++i) {
    hpo::UnitConfig c = space.sample(rng);
    const double obj = 10.0 * (c[0] - 0.3) * (c[0] - 0.3) + 1.0 * c[1] +
                       0.05 * rng.normal();
    history.push_back({c, obj});
  }
  const auto imp = hpo::parameter_importance(space, history);
  ASSERT_EQ(imp.size(), 4u);
  EXPECT_EQ(imp[0].name, "strong");
  EXPECT_GT(imp[0].importance, 0.5);
  EXPECT_EQ(imp[1].name, "weak");
  EXPECT_GT(imp[0].importance, imp[1].importance * 2);
  // Inert parameters rank last with near-zero importance.
  EXPECT_LT(imp[2].importance, 0.1);
  EXPECT_LT(imp[3].importance, 0.1);
  // The best bin for "strong" sits near the optimum at 0.3.
  EXPECT_NEAR(imp[0].best_bin_center, 0.3, 0.15);
}

TEST(Importance, ReportIsReadable) {
  std::vector<hpo::ParameterImportance> imp = {{"lr", 0.62, 0.4},
                                               {"units", 0.21, 0.9}};
  const std::string report = hpo::importance_report(imp);
  EXPECT_NE(report.find("lr: 62%"), std::string::npos);
  EXPECT_NE(report.find("units: 21%"), std::string::npos);
}

TEST(Importance, Validation) {
  hpo::SearchSpace space;
  space.add_float("a", 0, 1);
  std::vector<hpo::Observation> tiny = {{{0.5}, 1.0}};
  EXPECT_THROW(hpo::parameter_importance(space, tiny), Error);
  std::vector<hpo::Observation> ok(8, {{0.5}, 1.0});
  EXPECT_THROW(hpo::parameter_importance(space, ok, 1), Error);
  // Constant objective: zero variance handled gracefully.
  const auto imp = hpo::parameter_importance(space, ok);
  EXPECT_EQ(imp[0].importance, 0.0);
}

TEST(Importance, WorksOnRealSearchHistory) {
  // Run a short random search on the sphere and confirm the analysis is
  // finite and ordered.
  const hpo::SearchSpace space = hpo::make_mlp_space();
  hpo::RandomSearcher searcher(space, 2);
  const hpo::Objective f = hpo::make_sphere_objective(space, 3);
  for (int i = 0; i < 200; ++i) {
    const hpo::UnitConfig c = searcher.suggest();
    searcher.observe(c, f(c));
  }
  const auto imp = hpo::parameter_importance(space, searcher.history());
  ASSERT_EQ(static_cast<Index>(imp.size()), space.dims());
  for (std::size_t i = 1; i < imp.size(); ++i) {
    EXPECT_GE(imp[i - 1].importance, imp[i].importance);
  }
}

// ---- histology workload ------------------------------------------------------------

TEST(Histology, ShapesAndBalance) {
  biodata::HistologyConfig cfg;
  cfg.samples = 60;
  cfg.classes = 3;
  cfg.image_size = 16;
  Dataset d = biodata::make_histology(cfg);
  EXPECT_EQ(d.x.shape(), (Shape{60, 1, 16, 16}));
  EXPECT_EQ(d.y.shape(), (Shape{60}));
  Index counts[3] = {0, 0, 0};
  for (Index i = 0; i < 60; ++i) ++counts[static_cast<Index>(d.y[i])];
  EXPECT_EQ(counts[0], 20);
  EXPECT_EQ(counts[1], 20);
  EXPECT_EQ(counts[2], 20);
}

TEST(Histology, DeterministicPerSeed) {
  biodata::HistologyConfig cfg;
  cfg.samples = 20;
  Dataset a = biodata::make_histology(cfg);
  Dataset b = biodata::make_histology(cfg);
  EXPECT_EQ(max_abs_diff(a.x, b.x), 0.0f);
  cfg.seed = 77;
  Dataset c = biodata::make_histology(cfg);
  EXPECT_GT(max_abs_diff(a.x, c.x), 0.0f);
}

TEST(Histology, Conv2dClassifierLearns) {
  biodata::HistologyConfig cfg;
  cfg.samples = 450;
  cfg.classes = 3;
  cfg.image_size = 20;
  cfg.signal = 3.0f;
  cfg.seed = 9;
  Dataset d = biodata::make_histology(cfg);
  auto [train, test] = split(d, 0.8, 10);
  Model m;
  m.add(make_conv2d(8, 5, 2)).add(make_relu());
  m.add(make_conv2d(16, 3, 2)).add(make_relu());
  m.add(make_flatten());
  m.add(make_dense(32)).add(make_relu());
  m.add(make_dense(cfg.classes));
  m.build({1, cfg.image_size, cfg.image_size}, 11);
  SoftmaxCrossEntropy xent;
  Adam opt(1e-3f);
  FitOptions fo;
  fo.epochs = 16;
  fo.batch_size = 32;
  fo.seed = 12;
  fit(m, train, nullptr, xent, opt, fo);
  EXPECT_GT(accuracy(m.predict(test.x), test.y), 0.8)
      << "blob constellations must be conv2d-learnable";
}

TEST(Histology, Validation) {
  biodata::HistologyConfig bad;
  bad.classes = 1;
  EXPECT_THROW(biodata::make_histology(bad), Error);
  biodata::HistologyConfig tiny;
  tiny.image_size = 4;
  EXPECT_THROW(biodata::make_histology(tiny), Error);
}

}  // namespace
}  // namespace candle

// Cross-module property sweeps (parameterized): training robustness across
// (workload x precision policy), GEMM algebraic identities, collective-model
// laws, and performance-model monotonicity.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "biodata/workloads.hpp"
#include "core/kernels.hpp"
#include "hpcsim/perfmodel.hpp"
#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace candle {
namespace {

// ---- every workload trains under every precision policy ------------------------

enum class Task { DrugResponse, TumorType, Amr, CompoundScreen };

std::string task_name(Task t) {
  switch (t) {
    case Task::DrugResponse: return "drug";
    case Task::TumorType: return "tumor";
    case Task::Amr: return "amr";
    case Task::CompoundScreen: return "screen";
  }
  return "?";
}

class WorkloadPrecisionSweep
    : public ::testing::TestWithParam<std::tuple<Task, Precision>> {};

TEST_P(WorkloadPrecisionSweep, TrainingIsFiniteAndReducesLoss) {
  const auto [task, prec] = GetParam();
  Dataset data;
  Model m;
  std::unique_ptr<Loss> loss;
  switch (task) {
    case Task::DrugResponse: {
      biodata::DrugResponseConfig cfg;
      cfg.samples = 300;
      data = biodata::make_drug_response(cfg);
      m.add(make_dense(24)).add(make_relu()).add(make_dense(1));
      loss = make_mse();
      break;
    }
    case Task::TumorType: {
      biodata::TumorTypeConfig cfg;
      cfg.samples = 240;
      cfg.classes = 3;
      cfg.profile_length = 64;
      data = biodata::make_tumor_type(cfg);
      m.add(make_conv1d(4, 5, 2)).add(make_relu()).add(make_flatten());
      m.add(make_dense(3));
      loss = make_softmax_cross_entropy();
      break;
    }
    case Task::Amr: {
      biodata::AmrConfig cfg;
      cfg.samples = 300;
      data = biodata::make_amr(cfg);
      m.add(make_dense(24)).add(make_relu()).add(make_dense(1));
      loss = make_binary_cross_entropy();
      break;
    }
    case Task::CompoundScreen: {
      biodata::CompoundScreenConfig cfg;
      cfg.samples = 300;
      data = biodata::make_compound_screen(cfg);
      m.add(make_dense(24)).add(make_relu()).add(make_dense(1));
      loss = make_binary_cross_entropy();
      break;
    }
  }
  m.build(data.sample_shape(), 42);
  Adam opt(2e-3f);
  FitOptions fo;
  fo.epochs = 4;
  fo.batch_size = 32;
  fo.seed = 7;
  fo.precision = PrecisionPolicy::standard(prec);
  const FitHistory h = fit(m, data, nullptr, *loss, opt, fo);
  for (float l : h.train_loss) {
    ASSERT_TRUE(std::isfinite(l)) << task_name(task) << "/"
                                  << precision_name(prec);
  }
  EXPECT_LT(h.train_loss.back(), h.train_loss.front() + 1e-6f)
      << task_name(task) << "/" << precision_name(prec);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, WorkloadPrecisionSweep,
    ::testing::Combine(::testing::Values(Task::DrugResponse, Task::TumorType,
                                         Task::Amr, Task::CompoundScreen),
                       ::testing::Values(Precision::FP32, Precision::BF16,
                                         Precision::FP16, Precision::INT8)),
    [](const auto& pinfo) {
      return task_name(std::get<0>(pinfo.param)) + std::string("_") +
             precision_name(std::get<1>(pinfo.param));
    });

// ---- GEMM algebraic identities ---------------------------------------------------

TEST(GemmProperties, ScalingLinearity) {
  Pcg32 rng(1);
  const Index n = 24;
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c1({n, n}), c2({n, n});
  gemm(Op::None, Op::None, n, n, n, 2.5f, a.data(), n, b.data(), n, 0.0f,
       c1.data(), n);
  gemm(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, b.data(), n, 0.0f,
       c2.data(), n);
  c2.scale(2.5f);
  EXPECT_LE(max_abs_diff(c1, c2), 1e-4f);
}

TEST(GemmProperties, DistributesOverAddition) {
  Pcg32 rng(2);
  const Index n = 16;
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b1 = Tensor::randn({n, n}, rng);
  Tensor b2 = Tensor::randn({n, n}, rng);
  Tensor bsum = b1;
  bsum.axpy(1.0f, b2);
  Tensor lhs({n, n});
  gemm(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, bsum.data(), n, 0.0f,
       lhs.data(), n);
  Tensor rhs({n, n});
  gemm(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, b1.data(), n, 0.0f,
       rhs.data(), n);
  gemm(Op::None, Op::None, n, n, n, 1.0f, a.data(), n, b2.data(), n, 1.0f,
       rhs.data(), n);
  EXPECT_LE(max_abs_diff(lhs, rhs), 1e-4f);
}

TEST(GemmProperties, TransposeInvolution) {
  // (A^T)^T A == A^T ... practically: gemm with double transpose equals
  // untransposed (exercised via both operand paths).
  Pcg32 rng(3);
  const Index m = 8, n = 10, k = 12;
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor at({k, m});
  for (Index i = 0; i < m; ++i) {
    for (Index j = 0; j < k; ++j) at.at(j, i) = a.at(i, j);
  }
  Tensor c1({m, n}), c2({m, n});
  gemm(Op::None, Op::None, m, n, k, 1.0f, a.data(), k, b.data(), n, 0.0f,
       c1.data(), n);
  gemm(Op::Transpose, Op::None, m, n, k, 1.0f, at.data(), m, b.data(), n,
       0.0f, c2.data(), n);
  EXPECT_LE(max_abs_diff(c1, c2), 1e-4f);
}

// ---- collective model laws --------------------------------------------------------

class CollectiveLaws
    : public ::testing::TestWithParam<hpcsim::AllReduceAlgo> {};

TEST_P(CollectiveLaws, SuperadditiveInMessageSize) {
  // t(n1 + n2) <= t(n1) + t(n2): one big all-reduce never loses to two.
  const auto algo = GetParam();
  const auto f = hpcsim::fat_tree_fabric();
  Pcg32 rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    const double n1 = 1e3 + rng.next_double() * 1e8;
    const double n2 = 1e3 + rng.next_double() * 1e8;
    const Index p = 2 + static_cast<Index>(rng.next_below(510));
    EXPECT_LE(hpcsim::allreduce_time_s(f, algo, p, n1 + n2),
              hpcsim::allreduce_time_s(f, algo, p, n1) +
                  hpcsim::allreduce_time_s(f, algo, p, n2) + 1e-12);
  }
}

TEST_P(CollectiveLaws, BandwidthTermDominatesAsymptotically) {
  const auto algo = GetParam();
  const auto f = hpcsim::fat_tree_fabric();
  // Doubling a huge message roughly doubles the time (alpha negligible).
  const double t1 = hpcsim::allreduce_time_s(f, algo, 64, 1e9);
  const double t2 = hpcsim::allreduce_time_s(f, algo, 64, 2e9);
  EXPECT_NEAR(t2 / t1, 2.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Algos, CollectiveLaws,
    ::testing::Values(hpcsim::AllReduceAlgo::Ring,
                      hpcsim::AllReduceAlgo::BinomialTree,
                      hpcsim::AllReduceAlgo::HalvingDoubling),
    [](const auto& pinfo) {
      std::string n = hpcsim::allreduce_algo_name(pinfo.param);
      for (char& ch : n) {
        if (ch == '-') ch = '_';
      }
      return n;
    });

// ---- performance-model monotonicity -------------------------------------------------

TEST(PerfModelProperties, StepTimeMonotoneInModelSize) {
  const auto node = hpcsim::summit_node();
  const auto fabric = hpcsim::fat_tree_fabric();
  hpcsim::ParallelPlan plan;
  plan.data_replicas = 16;
  plan.batch_per_replica = 64;
  double prev = 0.0;
  for (double scale : {1.0, 2.0, 4.0, 8.0}) {
    hpcsim::TrainingWorkload w;
    w.flops_per_sample = 1e9 * scale;
    w.parameters = 1e7 * scale;
    w.bytes_per_sample = 1e4;
    w.activation_bytes_per_sample = 1e5 * scale;
    const auto est = hpcsim::estimate_step(node, fabric, w, plan);
    EXPECT_GT(est.step_s, prev);
    prev = est.step_s;
  }
}

TEST(PerfModelProperties, FasterNodeNeverSlower) {
  const auto fabric = hpcsim::fat_tree_fabric();
  hpcsim::TrainingWorkload w;
  w.flops_per_sample = 2e9;
  w.parameters = 5e7;
  w.bytes_per_sample = 6e4;
  w.activation_bytes_per_sample = 4e5;
  for (Precision p :
       {Precision::FP32, Precision::FP16, Precision::INT8}) {
    hpcsim::ParallelPlan plan;
    plan.data_replicas = 8;
    plan.batch_per_replica = 128;
    plan.precision = p;
    const double titan =
        hpcsim::estimate_step(hpcsim::titan_node(), fabric, w, plan).step_s;
    const double summit =
        hpcsim::estimate_step(hpcsim::summit_node(), fabric, w, plan).step_s;
    const double future =
        hpcsim::estimate_step(hpcsim::future_node(), fabric, w, plan).step_s;
    EXPECT_LE(summit, titan) << precision_name(p);
    EXPECT_LE(future, summit) << precision_name(p);
  }
}

TEST(PerfModelProperties, SamplesPerSecondConsistency) {
  // samples/s * step_s == global batch, exactly.
  const auto node = hpcsim::future_node();
  const auto fabric = hpcsim::dragonfly_fabric();
  hpcsim::TrainingWorkload w;
  w.flops_per_sample = 1e9;
  w.parameters = 1e7;
  w.bytes_per_sample = 1e4;
  w.activation_bytes_per_sample = 1e5;
  Pcg32 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    hpcsim::ParallelPlan plan;
    plan.data_replicas = 1 + static_cast<Index>(rng.next_below(64));
    plan.batch_per_replica = 1 + static_cast<Index>(rng.next_below(256));
    const auto est = hpcsim::estimate_step(node, fabric, w, plan);
    const double global =
        static_cast<double>(plan.data_replicas * plan.batch_per_replica);
    EXPECT_NEAR(est.samples_per_s * est.step_s, global, global * 1e-9);
  }
}

}  // namespace
}  // namespace candle

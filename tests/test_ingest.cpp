// Parallel data ingestion (src/data): (seed, epoch)-pure permutations and
// shard tiling, the concurrent bounded sample store (hit/miss/eviction
// accounting, fetch-once under concurrency, background prefetch), the
// double-buffered reader's bit-identity across prefetch depths / fetch
// threads / seek-resume, the legacy path's allocation-free persistent
// batch buffers, v3 checkpoint cursor round-trips, ingest-enabled
// data-parallel and resilient training determinism (including crash/restart
// mid-epoch), the hpcsim ingest drain law, and the serving feature-fetch
// path.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include "biodata/staging_io.hpp"
#include "data/reader.hpp"
#include "data/sample_list.hpp"
#include "data/store.hpp"
#include "hpcsim/perfmodel.hpp"
#include "nn/serialize.hpp"
#include "parallel/data_parallel.hpp"
#include "parallel/resilient.hpp"
#include "runtime/rng.hpp"
#include "runtime/workspace.hpp"
#include "serve/features.hpp"

namespace candle {
namespace {

Dataset blob_dataset(Index n, std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({n, 6}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < 6; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  return d;
}

Model small_model(std::uint64_t seed) {
  Model m;
  m.add(make_dense(16)).add(make_relu()).add(make_dense(8)).add(make_relu());
  m.add(make_dense(2));
  m.build({6}, seed);
  return m;
}

parallel::ModelFactory model_factory(std::uint64_t seed) {
  return [seed] { return small_model(seed); };
}

std::vector<float> weights_of(const Model& m) {
  std::vector<float> w(static_cast<std::size_t>(m.num_params()));
  m.copy_weights_to(w);
  return w;
}

/// Flatten one acquired step into a comparable float vector.
std::vector<float> flatten(const data::StepBatch& b) {
  std::vector<float> flat;
  for (const data::ReplicaShard& sh : b.shards) {
    flat.insert(flat.end(), sh.x.data(), sh.x.data() + sh.x.numel());
    flat.insert(flat.end(), sh.y.data(), sh.y.data() + sh.y.numel());
  }
  return flat;
}

/// Consume `steps` batches from a fresh store+reader at one configuration.
std::vector<std::vector<float>> collect_steps(const Dataset& d, Index replicas,
                                              Index bpr, std::uint64_t seed,
                                              Index depth, Index threads,
                                              Index steps) {
  data::DatasetSource src(d);
  data::SampleStoreOptions so;
  so.fetch_threads = threads;
  data::SampleStore store(src, so);
  data::ReaderOptions ro;
  ro.replicas = replicas;
  ro.batch_per_replica = bpr;
  ro.seed = seed;
  ro.prefetch_depth = depth;
  data::IngestReader reader(store, ro);
  std::vector<std::vector<float>> out;
  for (Index s = 0; s < steps; ++s) {
    out.push_back(flatten(reader.acquire()));
    reader.release();
  }
  return out;
}

// ---- (seed, epoch)-pure permutations ----------------------------------------

TEST(EpochPermutation, PureFunctionOfSeedAndEpochAndValid) {
  const Index n = 101;
  std::vector<Index> a, b;
  data::epoch_permutation(n, 42, 3, true, a);
  data::epoch_permutation(n, 42, 3, true, b);
  EXPECT_EQ(a, b) << "same (n, seed, epoch) must reproduce bit-identically";

  // A permutation: sorted copy is the identity.
  std::vector<Index> sorted = a;
  std::sort(sorted.begin(), sorted.end());
  for (Index i = 0; i < n; ++i) EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);

  // Epoch and seed both key the stream.
  std::vector<Index> other_epoch, other_seed;
  data::epoch_permutation(n, 42, 4, true, other_epoch);
  data::epoch_permutation(n, 43, 3, true, other_seed);
  EXPECT_NE(a, other_epoch) << "epoch boundary must reshuffle";
  EXPECT_NE(a, other_seed);

  // shuffle=false is the identity stream regardless of seed/epoch.
  std::vector<Index> ident;
  data::epoch_permutation(n, 42, 3, false, ident);
  for (Index i = 0; i < n; ++i) EXPECT_EQ(ident[static_cast<std::size_t>(i)], i);
}

TEST(EpochPermutation, ReusesTheOutputBufferAcrossEpochs) {
  std::vector<Index> out;
  data::epoch_permutation(64, 7, 0, true, out);
  const Index* p = out.data();
  for (Index e = 1; e < 20; ++e) {
    data::epoch_permutation(64, 7, e, true, out);
    EXPECT_EQ(out.data(), p) << "steady-state permutation rebuild allocated";
  }
}

// ---- sharded sample lists ---------------------------------------------------

TEST(ShardedSampleList, ShardsTileTheEpochPermutationAndDropTheTail) {
  const Index n = 100, replicas = 3, bpr = 8;
  data::ShardedSampleList list(n, replicas, bpr, true, 9);
  EXPECT_EQ(list.global_batch(), 24);
  EXPECT_EQ(list.steps_per_epoch(), 4);
  EXPECT_EQ(list.dropped_tail_samples(), 4);

  for (const Index epoch : {Index{0}, Index{2}}) {
    std::vector<Index> perm;
    data::epoch_permutation(n, 9, epoch, true, perm);
    for (Index s = 0; s < list.steps_per_epoch(); ++s) {
      const std::span<const Index> g = list.global(epoch, s);
      ASSERT_EQ(static_cast<Index>(g.size()), list.global_batch());
      for (Index r = 0; r < replicas; ++r) {
        const std::span<const Index> shard = list.shard(epoch, s, r);
        ASSERT_EQ(static_cast<Index>(shard.size()), bpr);
        for (Index j = 0; j < bpr; ++j) {
          // Replica r's shard is the r-th window of the global batch, which
          // is the s-th window of the epoch permutation.
          EXPECT_EQ(shard[static_cast<std::size_t>(j)],
                    perm[static_cast<std::size_t>(s * list.global_batch() +
                                                  r * bpr + j)]);
        }
      }
    }
  }
}

TEST(ShardedSampleList, CursorArithmeticRoundTrips) {
  data::ShardedSampleList list(64, 2, 8, true, 1);  // steps_per_epoch = 4
  data::StreamCursor c;
  for (Index pos = 0; pos < 13; ++pos) {
    EXPECT_EQ(list.position(c), pos);
    EXPECT_EQ(list.cursor_at(pos), c);
    c = list.next(c);
  }
  EXPECT_EQ(c.epoch, 3);
  EXPECT_EQ(c.step, 1);
}

TEST(ShardedSampleList, IndependentInstancesAgreeInAnyQueryOrder) {
  // Determinism comes from the pure permutation, not shared state: a second
  // instance queried in reverse epoch order returns identical shards.
  data::ShardedSampleList fwd(60, 2, 10, true, 5);
  data::ShardedSampleList rev(60, 2, 10, true, 5);
  std::vector<std::vector<Index>> want;
  for (Index e = 0; e < 4; ++e) {
    const std::span<const Index> g = fwd.global(e, 1);
    want.emplace_back(g.begin(), g.end());
  }
  for (Index e = 3; e >= 0; --e) {
    const std::span<const Index> g = rev.global(e, 1);
    EXPECT_EQ(std::vector<Index>(g.begin(), g.end()),
              want[static_cast<std::size_t>(e)]);
  }
}

// ---- sample store -----------------------------------------------------------

TEST(SampleStore, HitMissAccountingAndCorrectPayloads) {
  const Dataset d = blob_dataset(16, 3);
  data::DatasetSource src(d);
  data::SampleStoreOptions so;
  so.fetch_threads = 0;  // fully synchronous
  data::SampleStore store(src, so);
  EXPECT_EQ(store.x_elems(), 6);
  EXPECT_EQ(store.y_elems(), 1);

  std::vector<float> x(6), y(1);
  store.get(5, x, y);
  for (Index j = 0; j < 6; ++j) EXPECT_EQ(x[static_cast<std::size_t>(j)], d.x.at(5, j));
  EXPECT_EQ(y[0], d.y[5]);
  store.get(5, x, y);  // second read: cache hit
  store.get_x(5, std::span<float>(x));
  const data::SampleStoreStats st = store.stats();
  EXPECT_EQ(st.misses, 1u);
  EXPECT_EQ(st.hits, 2u);
  EXPECT_EQ(st.inserts, 1u);
  EXPECT_EQ(st.entries, 1u);
  // prefetch() without fetch threads is a documented no-op.
  const std::vector<Index> ids{1, 2, 3};
  store.prefetch(ids);
  store.drain();
  EXPECT_EQ(store.stats().prefetched, 0u);
}

TEST(SampleStore, EvictsToTheByteBudgetAndKeepsAccountingExact) {
  const Dataset d = blob_dataset(32, 4);
  data::DatasetSource src(d);
  data::SampleStoreOptions so;
  so.fetch_threads = 0;
  const std::size_t entry_bytes = sizeof(float) * (6 + 1);
  so.byte_budget = 3 * entry_bytes;  // room for exactly 3 entries
  data::SampleStore store(src, so);

  std::vector<float> x(6), y(1);
  for (Index i = 0; i < 32; ++i) store.get(i, x, y);
  const data::SampleStoreStats st = store.stats();
  EXPECT_EQ(st.misses, 32u);
  EXPECT_EQ(st.inserts, 32u);
  EXPECT_LE(st.entries, 3u);
  EXPECT_GE(st.entries, 1u);
  EXPECT_EQ(st.evictions, st.inserts - st.entries);
  EXPECT_EQ(st.bytes_cached, st.entries * entry_bytes);
  // Evicted entries refetch correctly (and re-count as misses, not hits).
  store.get(0, x, y);
  for (Index j = 0; j < 6; ++j) EXPECT_EQ(x[static_cast<std::size_t>(j)], d.x.at(0, j));
  EXPECT_EQ(store.stats().misses, 33u);
}

/// Source wrapper that counts fetch() calls (for the fetch-once contract).
class CountingSource final : public data::SampleSource {
 public:
  explicit CountingSource(const Dataset& d) : inner_(d) {}
  Index size() const override { return inner_.size(); }
  Shape x_sample_shape() const override { return inner_.x_sample_shape(); }
  Shape y_sample_shape() const override { return inner_.y_sample_shape(); }
  void fetch(Index sample, std::span<float> x, std::span<float> y) override {
    fetches.fetch_add(1, std::memory_order_relaxed);
    inner_.fetch(sample, x, y);
  }
  std::atomic<std::uint64_t> fetches{0};

 private:
  data::DatasetSource inner_;
};

TEST(SampleStore, ConcurrentColdLookupsOfOneSampleFetchItOnce) {
  const Dataset d = blob_dataset(8, 5);
  CountingSource src(d);
  data::SampleStoreOptions so;
  so.fetch_threads = 2;
  data::SampleStore store(src, so);

  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::vector<float>> xs(kThreads, std::vector<float>(6));
  std::vector<std::vector<float>> ys(kThreads, std::vector<float>(1));
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      store.get(3, xs[static_cast<std::size_t>(t)],
                ys[static_cast<std::size_t>(t)]);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(src.fetches.load(), 1u)
      << "a cold id hammered concurrently must hit the source exactly once";
  for (int t = 0; t < kThreads; ++t) {
    for (Index j = 0; j < 6; ++j) {
      EXPECT_EQ(xs[static_cast<std::size_t>(t)][static_cast<std::size_t>(j)],
                d.x.at(3, j));
    }
  }
}

TEST(SampleStore, PrefetchWarmsTheCacheInBackground) {
  const Dataset d = blob_dataset(24, 6);
  CountingSource src(d);
  data::SampleStoreOptions so;
  so.fetch_threads = 2;
  data::SampleStore store(src, so);

  std::vector<Index> ids(24);
  for (Index i = 0; i < 24; ++i) ids[static_cast<std::size_t>(i)] = i;
  store.prefetch(ids);
  store.prefetch(ids);  // duplicates dedup against queue/cache
  store.drain();
  data::SampleStoreStats st = store.stats();
  EXPECT_EQ(st.prefetched, 24u);
  EXPECT_EQ(src.fetches.load(), 24u);

  std::vector<float> x(6), y(1);
  for (Index i = 0; i < 24; ++i) store.get(i, x, y);
  st = store.stats();
  EXPECT_EQ(st.hits, 24u);
  EXPECT_EQ(st.misses, 0u);
}

// ---- ingest reader ----------------------------------------------------------

TEST(IngestReader, BitIdenticalAcrossPrefetchDepthsAndFetchThreads) {
  const Dataset d = blob_dataset(64, 7);
  // 10 steps at steps_per_epoch = 4 crosses two epoch boundaries.
  const auto base = collect_steps(d, 2, 8, 21, /*depth=*/1, /*threads=*/0, 10);
  EXPECT_EQ(base, collect_steps(d, 2, 8, 21, 2, 1, 10));
  EXPECT_EQ(base, collect_steps(d, 2, 8, 21, 4, 3, 10));
}

TEST(IngestReader, WrapsEpochsAndReshufflesAtTheBoundary) {
  const Dataset d = blob_dataset(64, 8);
  data::DatasetSource src(d);
  data::SampleStore store(src, data::SampleStoreOptions{});
  data::ReaderOptions ro;
  ro.replicas = 2;
  ro.batch_per_replica = 8;
  ro.seed = 3;
  ro.prefetch_depth = 2;
  data::IngestReader reader(store, ro);
  ASSERT_EQ(reader.steps_per_epoch(), 4);
  EXPECT_EQ(reader.dropped_tail_samples(), 0);

  std::vector<std::vector<float>> epoch0, epoch1;
  for (Index s = 0; s < 8; ++s) {
    const data::StepBatch& b = reader.acquire();
    EXPECT_EQ(b.cursor.epoch, s / 4);
    EXPECT_EQ(b.cursor.step, s % 4);
    (s < 4 ? epoch0 : epoch1).push_back(flatten(b));
    reader.release();
  }
  EXPECT_EQ(reader.cursor(), (data::StreamCursor{2, 0}));
  // Same sample set, different order: the boundary reshuffled.
  EXPECT_NE(epoch0, epoch1);
  auto sorted_flat = [](std::vector<std::vector<float>> v) {
    std::vector<float> all;
    for (auto& s : v) all.insert(all.end(), s.begin(), s.end());
    std::sort(all.begin(), all.end());
    return all;
  };
  EXPECT_EQ(sorted_flat(epoch0), sorted_flat(epoch1));
}

TEST(IngestReader, SeekResumesTheStreamBitIdentically) {
  const Dataset d = blob_dataset(48, 9);
  const Index steps = 12;
  const auto continuous = collect_steps(d, 2, 6, 17, 2, 1, steps);

  // Consume 5 steps, capture the cursor, and resume from it in a brand-new
  // store + reader — the checkpoint/restart shape.
  data::StreamCursor resume_at;
  {
    data::DatasetSource src(d);
    data::SampleStore store(src, data::SampleStoreOptions{});
    data::ReaderOptions ro;
    ro.replicas = 2;
    ro.batch_per_replica = 6;
    ro.seed = 17;
    ro.prefetch_depth = 2;
    data::IngestReader reader(store, ro);
    for (Index s = 0; s < 5; ++s) {
      EXPECT_EQ(flatten(reader.acquire()), continuous[static_cast<std::size_t>(s)]);
      reader.release();
    }
    resume_at = reader.cursor();
  }
  data::DatasetSource src(d);
  data::SampleStore store(src, data::SampleStoreOptions{});
  data::ReaderOptions ro;
  ro.replicas = 2;
  ro.batch_per_replica = 6;
  ro.seed = 17;
  ro.prefetch_depth = 3;  // resume determinism is depth-independent too
  data::IngestReader reader(store, ro);
  reader.seek(resume_at);
  for (Index s = 5; s < steps; ++s) {
    EXPECT_EQ(flatten(reader.acquire()), continuous[static_cast<std::size_t>(s)]);
    reader.release();
  }
  // Seeking backward replays from the top.
  reader.seek({0, 0});
  EXPECT_EQ(flatten(reader.acquire()), continuous[0]);
  reader.release();
}

TEST(IngestReader, SteadyStateAssemblyIsAllocationFree) {
  const Dataset d = blob_dataset(64, 10);
  data::DatasetSource src(d);
  data::SampleStoreOptions so;
  so.fetch_threads = 1;  // budget default holds the whole set
  data::SampleStore store(src, so);
  data::ReaderOptions ro;
  ro.replicas = 2;
  ro.batch_per_replica = 8;
  ro.seed = 11;
  ro.prefetch_depth = 2;
  data::IngestReader reader(store, ro);

  // Warm epoch: slots fill, the store caches every sample.
  std::vector<const float*> slot_ptrs;
  for (Index s = 0; s < 4; ++s) {
    const data::StepBatch& b = reader.acquire();
    for (const data::ReplicaShard& sh : b.shards) {
      slot_ptrs.push_back(sh.x.data());
      slot_ptrs.push_back(sh.y.data());
    }
    reader.release();
  }
  const std::uint64_t inserts0 = store.stats().inserts;
  const std::uint64_t grow0 = workspace_stats().grow_count;

  // Two more epochs: tensors are refilled in place (the same slot pointers
  // recur), the fully-cached store creates no new entries, and no workspace
  // arena grows on the assembly path.
  std::vector<const float*> again;
  for (Index s = 0; s < 8; ++s) {
    const data::StepBatch& b = reader.acquire();
    for (const data::ReplicaShard& sh : b.shards) {
      again.push_back(sh.x.data());
      again.push_back(sh.y.data());
    }
    reader.release();
  }
  for (const float* p : again) {
    EXPECT_NE(std::find(slot_ptrs.begin(), slot_ptrs.end(), p),
              slot_ptrs.end())
        << "batch tensor storage reallocated at steady state";
  }
  EXPECT_EQ(store.stats().inserts, inserts0);
  EXPECT_EQ(workspace_stats().grow_count, grow0);
}

TEST(IngestReader, GuardsAcquireReleaseDiscipline) {
  const Dataset d = blob_dataset(32, 12);
  data::DatasetSource src(d);
  data::SampleStore store(src, data::SampleStoreOptions{});
  data::ReaderOptions ro;
  ro.replicas = 1;
  ro.batch_per_replica = 8;
  data::IngestReader reader(store, ro);
  EXPECT_THROW(reader.release(), std::runtime_error);
  (void)reader.acquire();
  EXPECT_THROW(reader.acquire(), std::runtime_error);
  EXPECT_THROW(reader.seek({0, 0}), std::runtime_error);
  reader.release();
}

// ---- legacy path: persistent buffers, unchanged stream ----------------------

TEST(LegacyBatchPath, NextIndicesPreservesTheExactBatchStream) {
  const Dataset d = blob_dataset(70, 13);
  BatchIterator it_old(d, 16, true, 77);
  BatchIterator it_new(d, 16, true, 77);
  for (Index s = 0; s < 15; ++s) {  // crosses epochs, includes short tails
    const Dataset via_next = it_old.next();
    const std::span<const Index> idx = it_new.next_indices();
    const Dataset via_gather = gather(d, idx);
    EXPECT_EQ(via_next.x.shape(), via_gather.x.shape());
    EXPECT_TRUE(std::equal(via_next.x.data(),
                           via_next.x.data() + via_next.x.numel(),
                           via_gather.x.data()));
    EXPECT_TRUE(std::equal(via_next.y.data(),
                           via_next.y.data() + via_next.y.numel(),
                           via_gather.y.data()));
    EXPECT_EQ(it_old.epoch(), it_new.epoch());
  }
}

TEST(LegacyBatchPath, GatherIntoPersistentBuffersIsAllocationFree) {
  const Dataset d = blob_dataset(64, 14);
  BatchIterator it(d, 16, true, 5);
  Dataset buf{Tensor({16, 6}), Tensor({16})};
  const float* px = buf.x.data();
  const float* py = buf.y.data();

  gather_into(d, it.next_indices(), buf);  // warm
  const std::uint64_t grow0 = workspace_stats().grow_count;
  for (Index s = 0; s < 20; ++s) {
    const std::span<const Index> idx = it.next_indices();
    gather_into(d, idx, buf);
    EXPECT_EQ(buf.x.data(), px);
    EXPECT_EQ(buf.y.data(), py);
    // Spot-check correctness against the allocating gather.
    const Dataset want = gather(d, idx);
    EXPECT_TRUE(std::equal(want.x.data(), want.x.data() + want.x.numel(),
                           buf.x.data()));
  }
  EXPECT_EQ(workspace_stats().grow_count, grow0);
}

// ---- checkpoint v3 cursor ---------------------------------------------------

TEST(CheckpointV3, StreamCursorRoundTripsAndPlainSaveStaysV2) {
  const std::string path = "/tmp/candle_ingest_ckpt.bin";
  const Dataset d = blob_dataset(64, 15);
  SoftmaxCrossEntropy xent;
  Model a = small_model(16);
  Adam opt_a(5e-3f);
  for (Index s = 0; s < 3; ++s) a.train_batch(d.x, d.y, xent, opt_a);

  save_checkpoint(a, &opt_a, /*step=*/7, /*cursor_epoch=*/3, /*cursor_step=*/2,
                  /*stream_seed=*/0xfeedULL, path);
  Model b = small_model(999);
  Adam opt_b(5e-3f);
  const CheckpointMeta meta = load_checkpoint(b, &opt_b, path);
  EXPECT_EQ(meta.version, 3u);
  EXPECT_EQ(meta.step, 7);
  EXPECT_TRUE(meta.has_optimizer);
  EXPECT_TRUE(meta.has_cursor);
  EXPECT_EQ(meta.cursor_epoch, 3);
  EXPECT_EQ(meta.cursor_step, 2);
  EXPECT_EQ(meta.stream_seed, 0xfeedULL);
  EXPECT_EQ(weights_of(b), weights_of(a));

  // The cursor-less writer still emits v2 (existing tooling reads it).
  save_checkpoint(a, &opt_a, 7, path);
  Model c = small_model(998);
  const CheckpointMeta plain = load_checkpoint(c, nullptr, path);
  EXPECT_EQ(plain.version, 2u);
  EXPECT_FALSE(plain.has_cursor);
  EXPECT_EQ(plain.stream_seed, 0u);
  std::filesystem::remove(path);
}

// ---- ingest-enabled training ------------------------------------------------

parallel::DataParallelOptions ingest_dp_options(Index depth, Index threads) {
  parallel::DataParallelOptions o;
  o.replicas = 4;
  o.epochs = 2;
  o.batch_per_replica = 8;
  o.seed = 31;
  o.ingest.enabled = true;
  o.ingest.prefetch_depth = depth;
  o.ingest.fetch_threads = threads;
  return o;
}

TEST(IngestDataParallel, LossBitIdenticalAcrossPrefetchConfigs) {
  const Dataset d = blob_dataset(200, 17);  // global batch 32: 8-sample tail
  SoftmaxCrossEntropy xent;

  Model sync_model;
  const parallel::DataParallelResult sync = parallel::train_data_parallel(
      model_factory(18), [] { return make_adam(5e-3f); }, d, xent,
      ingest_dp_options(/*depth=*/1, /*threads=*/0), &sync_model);
  Model pre_model;
  const parallel::DataParallelResult pre = parallel::train_data_parallel(
      model_factory(18), [] { return make_adam(5e-3f); }, d, xent,
      ingest_dp_options(/*depth=*/3, /*threads=*/2), &pre_model);

  EXPECT_EQ(sync.steps, 12);  // 6 steps/epoch * 2 epochs
  EXPECT_EQ(pre.steps, sync.steps);
  EXPECT_EQ(pre.epoch_loss, sync.epoch_loss)
      << "prefetch depth / fetch threads must not change one bit of training";
  EXPECT_EQ(weights_of(pre_model), weights_of(sync_model));

  EXPECT_EQ(sync.dropped_tail_samples, 8);
  EXPECT_EQ(pre.dropped_tail_samples, 8);
  EXPECT_GT(pre.measured_ingest_busy_s, 0.0);
  EXPECT_GE(pre.measured_ingest_overlap_fraction, 0.0);
  EXPECT_LE(pre.measured_ingest_overlap_fraction, 1.0);
}

TEST(IngestDataParallel, LegacyPathSurfacesDroppedTailToo) {
  const Dataset d = blob_dataset(200, 19);
  SoftmaxCrossEntropy xent;
  parallel::DataParallelOptions o;
  o.replicas = 4;
  o.epochs = 1;
  o.batch_per_replica = 8;
  o.seed = 31;  // ingest stays disabled: legacy BatchIterator path
  const parallel::DataParallelResult res = parallel::train_data_parallel(
      model_factory(20), [] { return make_adam(5e-3f); }, d, xent, o);
  EXPECT_EQ(res.dropped_tail_samples, 8);
  EXPECT_EQ(res.steps, 6);
  // Legacy assembly is inline: busy == exposed, overlap 0.
  EXPECT_GT(res.measured_ingest_busy_s, 0.0);
  EXPECT_DOUBLE_EQ(res.measured_ingest_busy_s, res.measured_exposed_ingest_s);
  EXPECT_EQ(res.measured_ingest_overlap_fraction, 0.0);
}

parallel::ResilientOptions ingest_resilient_options(const std::string& tag,
                                                    Index depth,
                                                    Index threads) {
  parallel::ResilientOptions o;
  o.train.replicas = 4;
  o.train.epochs = 4;
  o.train.batch_per_replica = 16;
  o.train.seed = 71;
  o.train.ingest.enabled = true;
  o.train.ingest.prefetch_depth = depth;
  o.train.ingest.fetch_threads = threads;
  o.checkpoint_every_steps = 3;  // checkpoints land mid-epoch
  o.checkpoint_path = "/tmp/candle_ingest_resil_" + tag + ".bin";
  o.collective_timeout = std::chrono::milliseconds(500);
  return o;
}

void cleanup_ckpt(const std::string& tag) {
  std::filesystem::remove("/tmp/candle_ingest_resil_" + tag + ".bin");
  std::filesystem::remove("/tmp/candle_ingest_resil_" + tag + ".bin.tmp");
}

TEST(IngestResilient, CrashRestartMidEpochBitIdenticalToFailureFree) {
  const Dataset d = blob_dataset(256, 61);  // global 64: 4 steps/epoch
  SoftmaxCrossEntropy xent;

  Model clean;
  const parallel::ResilientResult res_clean = parallel::train_resilient(
      model_factory(62), [] { return make_adam(5e-3f); }, d, xent,
      ingest_resilient_options("clean", 2, 1), &clean);

  // Crash at step 5 — epoch 1, step 1 — so the restore seeks to the mid-
  // epoch cursor from the step-3 checkpoint instead of an epoch boundary.
  parallel::ResilientOptions faulted =
      ingest_resilient_options("faulted", 2, 1);
  faulted.faults.crash(5, 1);
  Model recovered;
  const parallel::ResilientResult res_faulted = parallel::train_resilient(
      model_factory(62), [] { return make_adam(5e-3f); }, d, xent, faulted,
      &recovered);

  EXPECT_EQ(res_clean.committed_steps, 16);
  EXPECT_EQ(res_faulted.committed_steps, 16);
  EXPECT_EQ(res_faulted.crashes, 1);
  EXPECT_EQ(res_faulted.restarts, 1);
  EXPECT_EQ(res_faulted.epoch_loss, res_clean.epoch_loss);
  EXPECT_EQ(weights_of(recovered), weights_of(clean))
      << "restart must resume the ingest stream at the checkpointed cursor";
  cleanup_ckpt("clean");
  cleanup_ckpt("faulted");
}

TEST(IngestResilient, ShrinkRecoveryBitIdenticalAcrossPrefetchConfigs) {
  const Dataset d = blob_dataset(256, 61);
  SoftmaxCrossEntropy xent;
  auto opts = [&](const std::string& tag, Index depth, Index threads) {
    parallel::ResilientOptions o = ingest_resilient_options(tag, depth, threads);
    o.policy = parallel::RecoveryPolicy::Shrink;
    o.faults.crash(5, 2);
    return o;
  };

  Model sync_model;
  const parallel::ResilientResult res_sync = parallel::train_resilient(
      model_factory(62), [] { return make_adam(5e-3f); }, d, xent,
      opts("shr_sync", 1, 0), &sync_model);
  Model pre_model;
  const parallel::ResilientResult res_pre = parallel::train_resilient(
      model_factory(62), [] { return make_adam(5e-3f); }, d, xent,
      opts("shr_pre", 3, 2), &pre_model);

  EXPECT_EQ(res_sync.shrinks, 1);
  EXPECT_EQ(res_pre.shrinks, 1);
  EXPECT_EQ(res_pre.final_replicas, res_sync.final_replicas);
  EXPECT_EQ(res_pre.committed_steps, res_sync.committed_steps);
  EXPECT_EQ(weights_of(pre_model), weights_of(sync_model))
      << "the re-anchored post-shrink stream must be depth/thread invariant";
  cleanup_ckpt("shr_sync");
  cleanup_ckpt("shr_pre");
}

// ---- hpcsim ingest drain law ------------------------------------------------

TEST(IngestModelLaw, ClosedFormPins) {
  namespace hs = hpcsim;
  // depth 1 (synchronous): every step pays the full assembly cost.
  EXPECT_NEAR(hs::ingest_exposed_s_per_step(0.3, 0.1, 1, 17), 0.3, 1e-12);
  // depth 2, assembly hidden behind compute: only the pipeline fill shows.
  EXPECT_NEAR(hs::ingest_exposed_s_per_step(0.01, 0.1, 2, 100), 0.01 / 100.0,
              1e-15);
  // depth 2, assembler the bottleneck: fill + steady max(0, a - c) per step.
  EXPECT_NEAR(hs::ingest_exposed_s_per_step(0.3, 0.1, 2, 50),
              (0.3 + 49.0 * 0.2) / 50.0, 1e-12);
  // A deeper ring cannot beat the serial assembler's steady state.
  EXPECT_NEAR(hs::ingest_exposed_s_per_step(0.3, 0.1, 4, 50),
              (0.3 + 49.0 * 0.2) / 50.0, 1e-12);
  // Free assembly is never exposed; depth is monotone non-increasing.
  EXPECT_DOUBLE_EQ(hs::ingest_exposed_s_per_step(0.0, 0.1, 2, 64), 0.0);
  double prev = hs::ingest_exposed_s_per_step(0.2, 0.1, 1, 64);
  for (const Index depth : {Index{2}, Index{4}, Index{8}}) {
    const double e = hs::ingest_exposed_s_per_step(0.2, 0.1, depth, 64);
    EXPECT_LE(e, prev + 1e-15);
    prev = e;
  }
}

TEST(IngestModelLaw, EstimateStepComposesAndDefaultsUnchanged) {
  namespace hs = hpcsim;
  const hs::NodeSpec node = hs::summit_node();
  const hs::Fabric fabric = hs::fat_tree_fabric();
  hs::TrainingWorkload w;
  w.name = "ingest-bound";
  w.flops_per_sample = 1e8;
  w.parameters = 1e6;
  w.bytes_per_sample = 1e4;
  w.activation_bytes_per_sample = 1e5;
  hs::ParallelPlan plan;
  plan.data_replicas = 4;

  const hs::StepEstimate base = hs::estimate_step(node, fabric, w, plan);
  EXPECT_EQ(base.ingest_s, 0.0);
  EXPECT_EQ(base.ingest_exposed_s, 0.0);

  hs::IngestModel ing;
  ing.assemble_s_per_step = 10.0 * base.step_s;  // assembly dominates
  ing.prefetch_depth = 2;
  ing.steps = 256;
  const hs::StepEstimate e =
      hs::estimate_step_with_ingest(node, fabric, w, plan, ing);
  EXPECT_DOUBLE_EQ(e.ingest_s, ing.assemble_s_per_step);
  EXPECT_DOUBLE_EQ(e.step_s, base.step_s + e.ingest_exposed_s);
  EXPECT_NEAR(e.ingest_exposed_s,
              hs::ingest_exposed_s_per_step(ing.assemble_s_per_step,
                                            base.step_s, 2, 256),
              1e-15);

  // Cheap assembly hides entirely (steady state): step time ~unchanged.
  hs::IngestModel cheap;
  cheap.assemble_s_per_step = 0.01 * base.step_s;
  cheap.steps = 1 << 14;
  const hs::StepEstimate h =
      hs::estimate_step_with_ingest(node, fabric, w, plan, cheap);
  EXPECT_LT(h.ingest_exposed_s, 1e-4 * base.step_s);
}

// ---- serving feature-fetch path ---------------------------------------------

TEST(FeatureService, FetchesRequestReadyFeaturesThroughTheStore) {
  const Dataset d = blob_dataset(32, 23);
  data::DatasetSource src(d);
  data::SampleStoreOptions so;
  so.fetch_threads = 2;
  data::SampleStore store(src, so);
  serve::FeatureService svc(store);
  EXPECT_EQ(svc.feature_dim(), 6);
  EXPECT_EQ(svc.sample_count(), 32);

  std::vector<float> out(6);
  svc.fetch_features(9, out);
  for (Index j = 0; j < 6; ++j) EXPECT_EQ(out[static_cast<std::size_t>(j)], d.x.at(9, j));

  const serve::Request req = svc.make_request(/*id=*/42, /*sample=*/4,
                                              /*deadline_s=*/0.25);
  EXPECT_EQ(req.id, 42u);
  EXPECT_DOUBLE_EQ(req.deadline_s, 0.25);
  ASSERT_EQ(req.input.size(), 6u);
  for (Index j = 0; j < 6; ++j) EXPECT_EQ(req.input[static_cast<std::size_t>(j)], d.x.at(4, j));

  // warm() pre-faults the working set; subsequent fetches are all hits.
  std::vector<Index> ids(32);
  for (Index i = 0; i < 32; ++i) ids[static_cast<std::size_t>(i)] = i;
  svc.warm(ids);
  EXPECT_EQ(svc.store_stats().prefetched, 30u);  // 2 ids above fetched already
  const std::uint64_t misses = svc.store_stats().misses;
  for (Index i = 0; i < 32; ++i) svc.fetch_features(i, out);
  EXPECT_EQ(svc.store_stats().misses, misses);
}

// ---- staged on-disk source --------------------------------------------------

TEST(StagedSource, MatchesTheInMemorySourceBitwise) {
  const std::string path = "/tmp/candle_ingest_staged.bin";
  const Dataset d = blob_dataset(40, 29);
  biodata::stage_dataset(d, path);

  data::DatasetSource mem(d);
  data::StagedSource disk(path);
  EXPECT_EQ(disk.size(), mem.size());
  EXPECT_EQ(disk.x_sample_shape(), mem.x_sample_shape());
  EXPECT_EQ(disk.y_sample_shape(), mem.y_sample_shape());

  std::vector<float> mx(6), my(1), dx(6), dy(1);
  for (const Index i : {Index{0}, Index{7}, Index{39}, Index{7}}) {
    mem.fetch(i, mx, my);
    disk.fetch(i, dx, dy);
    EXPECT_EQ(dx, mx);
    EXPECT_EQ(dy, my);
  }

  // Concurrent reads through the store exercise the internal serialization.
  data::SampleStoreOptions so;
  so.fetch_threads = 3;
  data::SampleStore store(disk, so);
  std::vector<Index> ids(40);
  for (Index i = 0; i < 40; ++i) ids[static_cast<std::size_t>(i)] = i;
  store.prefetch(ids);
  store.drain();
  for (Index i = 0; i < 40; ++i) {
    store.get(i, dx, dy);
    mem.fetch(i, mx, my);
    EXPECT_EQ(dx, mx);
    EXPECT_EQ(dy, my);
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace candle

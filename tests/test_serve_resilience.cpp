// Serving-path resilience (chaos) suite: the SupervisedEngine under the
// deterministic serving fault schedule — worker crashes recovered by
// re-enqueue + replacement, hangs raced by hedged duplicates and escalated
// to retirement, NaN-poisoned batches recomputed, brownout degradation, and
// the extended exact-accounting invariant
//   submitted == completed + shed_total() + failed
// after every drain, with hedged/re-dispatched duplicates resolving each
// request exactly once.  The whole file is a TSan target in CI.
//
// Determinism policy: fault *schedules* are seeded and replay bit-identical
// (pinned below); engine-side assertions are phrased so they hold for every
// legal thread interleaving — exact counters where the schedule forces them
// (single-worker pools, count-closed batches), invariants everywhere else.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "hpcsim/machine.hpp"
#include "hpcsim/perfmodel.hpp"
#include "hpcsim/resilience.hpp"
#include "nn/model.hpp"
#include "runtime/fault.hpp"
#include "runtime/rng.hpp"
#include "serve/supervisor.hpp"

namespace candle {
namespace {

using runtime::FaultInjector;
using runtime::FaultKind;
using runtime::FaultSchedule;
using runtime::serving_chaos_schedule;
using serve::EngineStats;
using serve::Outcome;
using serve::Request;
using serve::Response;
using serve::SupervisedEngine;
using serve::SupervisedOptions;

Model mlp(Index in, Index hidden, Index out, std::uint64_t seed) {
  Model m;
  m.add(make_dense(hidden)).add(make_relu()).add(make_dense(out));
  m.build({in}, seed);
  return m;
}

Tensor random_inputs(Index n, Index features, std::uint64_t seed) {
  Pcg32 rng(seed);
  Tensor x({n, features});
  for (Index i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  return x;
}

Request request_for_row(const Tensor& x, Index row) {
  Request r;
  r.id = static_cast<std::uint64_t>(row);
  const Index f = x.numel() / x.dim(0);
  r.input.assign(x.data() + row * f, x.data() + (row + 1) * f);
  return r;
}

/// submitted == completed + shed + failed, and the histograms agree.
void expect_exact_accounting(const EngineStats& s) {
  EXPECT_EQ(s.accounting_gap(), 0)
      << "submitted=" << s.submitted << " completed=" << s.completed
      << " shed=" << s.shed_total() << " failed=" << s.failed;
  EXPECT_EQ(s.latency.total, s.completed);
  EXPECT_EQ(s.queue_wait.total, s.completed);
}

Index count_log(const FaultInjector& inj, FaultKind kind,
                const std::string& phase) {
  Index n = 0;
  for (const auto& rec : inj.log()) {
    if (rec.kind == kind && rec.phase == phase) ++n;
  }
  return n;
}

// ---- seeded chaos schedules -------------------------------------------------

TEST(ServingChaosSchedule, ReplaysBitIdenticalAndCellsAreUnique) {
  const FaultSchedule a = serving_chaos_schedule(77, 20, 4, 3, 2, 2, 0.05);
  const FaultSchedule b = serving_chaos_schedule(77, 20, 4, 3, 2, 2, 0.05);
  ASSERT_EQ(a.events.size(), 7u);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].step, b.events[i].step);
    EXPECT_EQ(a.events[i].rank, b.events[i].rank);
    EXPECT_EQ(a.events[i].delay_s, b.events[i].delay_s);
  }
  // At most one event per (batch ordinal, worker) cell, all in range.
  std::vector<std::pair<Index, Index>> cells;
  for (const auto& e : a.events) {
    EXPECT_GE(e.step, 0);
    EXPECT_LT(e.step, 20);
    EXPECT_GE(e.rank, 0);
    EXPECT_LT(e.rank, 4);
    cells.emplace_back(e.step, e.rank);
  }
  std::sort(cells.begin(), cells.end());
  EXPECT_EQ(std::adjacent_find(cells.begin(), cells.end()), cells.end());
  // A different seed draws a different plan.
  const FaultSchedule c = serving_chaos_schedule(78, 20, 4, 3, 2, 2, 0.05);
  bool differs = false;
  for (std::size_t i = 0; i < c.events.size(); ++i) {
    if (c.events[i].step != a.events[i].step ||
        c.events[i].rank != a.events[i].rank) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ServingChaosSchedule, NamesAndBuildersCoverServingKinds) {
  EXPECT_STREQ(runtime::fault_kind_name(FaultKind::WorkerCrash),
               "worker-crash");
  EXPECT_STREQ(runtime::fault_kind_name(FaultKind::WorkerHang), "worker-hang");
  EXPECT_STREQ(runtime::fault_kind_name(FaultKind::BatchCorruption),
               "batch-corruption");
  FaultSchedule s;
  s.kill_worker(3, 1).hang_worker(4, 0, 0.25).corrupt_batch(5, 2, 7);
  ASSERT_EQ(s.events.size(), 3u);
  EXPECT_EQ(s.events[0].kind, FaultKind::WorkerCrash);
  EXPECT_EQ(s.events[1].delay_s, 0.25);
  EXPECT_EQ(s.events[2].corrupt_count, 7);
}

// ---- supervised engine: healthy path ---------------------------------------

TEST(SupervisedEngineTest, HealthyRunIsBitIdenticalWithZeroFaultCounters) {
  const Model m = mlp(8, 32, 4, 3);
  const Tensor x = random_inputs(32, 8, 11);
  const Tensor expected = m.predict(x, 32);
  const Index out_f = expected.numel() / expected.dim(0);

  SupervisedOptions opt;
  opt.workers = 3;
  opt.batch.max_batch = 8;
  opt.batch.max_wait_s = 5e-4;
  SupervisedEngine engine(m, opt);
  std::vector<std::future<Response>> futures;
  for (Index i = 0; i < 32; ++i) {
    futures.push_back(engine.submit(request_for_row(x, i)));
  }
  for (auto& f : futures) {
    const Response r = f.get();
    ASSERT_EQ(r.outcome, Outcome::Completed);
    const Index row = static_cast<Index>(r.id);
    for (Index j = 0; j < out_f; ++j) {
      ASSERT_EQ(r.output[static_cast<std::size_t>(j)],
                expected[row * out_f + j]);
    }
  }
  engine.drain();
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_EQ(s.completed, 32u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.worker_crashes, 0u);
  EXPECT_EQ(s.worker_hangs, 0u);
  EXPECT_EQ(s.worker_restarts, 0u);
  EXPECT_EQ(s.corruption_retries, 0u);
  EXPECT_EQ(s.requeued, 0u);
}

// ---- worker crash recovery --------------------------------------------------

TEST(SupervisedEngineTest, CrashedWorkerIsReplacedAndItsBatchRecovered) {
  const Model m = mlp(8, 32, 4, 3);
  const Tensor x = random_inputs(32, 8, 13);
  const Tensor expected = m.predict(x, 32);
  const Index out_f = expected.numel() / expected.dim(0);

  // Single worker, crash on its second batch: the abandoned rows must be
  // re-enqueued and served bit-identically by the replacement (fresh id 1 —
  // the schedule entry for worker 0 never re-fires).
  FaultSchedule schedule;
  schedule.kill_worker(/*batch=*/1, /*worker=*/0);
  FaultInjector injector(std::move(schedule));

  SupervisedOptions opt;
  opt.workers = 1;
  opt.batch.max_batch = 4;
  opt.batch.max_wait_s = 1e-3;
  opt.supervise.hedging = false;  // keep the requeue counter crash-only
  opt.supervise.restart_backoff_s = 1e-3;
  SupervisedEngine engine(m, opt, &injector);
  std::vector<std::future<Response>> futures;
  for (Index i = 0; i < 32; ++i) {
    futures.push_back(engine.submit(request_for_row(x, i)));
  }
  for (auto& f : futures) {
    const Response r = f.get();
    ASSERT_EQ(r.outcome, Outcome::Completed);
    const Index row = static_cast<Index>(r.id);
    for (Index j = 0; j < out_f; ++j) {
      ASSERT_EQ(r.output[static_cast<std::size_t>(j)],
                expected[row * out_f + j]);
    }
  }
  engine.drain();
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_EQ(s.completed, 32u);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_EQ(s.worker_crashes, 1u);
  EXPECT_EQ(s.worker_restarts, 1u);
  EXPECT_GE(s.requeued, 1u);
  EXPECT_EQ(count_log(injector, FaultKind::WorkerCrash, "injected"), 1);
  EXPECT_EQ(count_log(injector, FaultKind::WorkerCrash, "detected"), 1);
  EXPECT_EQ(injector.remaining(), 0);
}

TEST(SupervisedEngineTest, CrashPastRequestBudgetFailsExplicitly) {
  const Model m = mlp(8, 16, 4, 3);
  const Tensor x = random_inputs(8, 8, 17);

  FaultSchedule schedule;
  schedule.kill_worker(0, 0);
  FaultInjector injector(std::move(schedule));

  SupervisedOptions opt;
  opt.workers = 1;
  opt.batch.max_batch = 4;
  opt.batch.max_wait_s = 0.05;  // batches close on count, not the clock
  opt.supervise.max_request_crashes = 0;  // one abandonment = failure
  opt.supervise.hedging = false;
  SupervisedEngine engine(m, opt, &injector);

  // Phase 1: exactly one full batch; the worker crashes holding it, and
  // with a zero crash budget all four rows must resolve Failed.
  std::vector<std::future<Response>> first;
  for (Index i = 0; i < 4; ++i) {
    first.push_back(engine.submit(request_for_row(x, i)));
  }
  for (auto& f : first) EXPECT_EQ(f.get().outcome, Outcome::Failed);
  // Phase 2: the replacement worker serves the next batch normally.
  std::vector<std::future<Response>> second;
  for (Index i = 4; i < 8; ++i) {
    second.push_back(engine.submit(request_for_row(x, i)));
  }
  for (auto& f : second) EXPECT_EQ(f.get().outcome, Outcome::Completed);
  engine.drain();
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_EQ(s.failed, 4u);
  EXPECT_EQ(s.completed, 4u);
  EXPECT_EQ(s.requeued, 0u);  // past budget: failed, never re-enqueued
  EXPECT_EQ(s.worker_crashes, 1u);
}

TEST(SupervisedEngineTest, ExhaustedRestartBudgetCollapsesExplicitly) {
  const Model m = mlp(8, 16, 4, 3);
  const Tensor x = random_inputs(8, 8, 19);

  FaultSchedule schedule;
  schedule.kill_worker(0, 0);
  FaultInjector injector(std::move(schedule));

  SupervisedOptions opt;
  opt.workers = 1;
  opt.batch.max_batch = 4;
  opt.batch.max_wait_s = 0.05;
  opt.supervise.max_restarts = 0;  // the pool cannot be rebuilt
  opt.supervise.hedging = false;
  SupervisedEngine engine(m, opt, &injector);

  std::vector<std::future<Response>> futures;
  for (Index i = 0; i < 4; ++i) {
    futures.push_back(engine.submit(request_for_row(x, i)));
  }
  // The lone worker dies holding the batch; with no restart budget the
  // supervisor must fail every admitted request rather than hang clients.
  for (auto& f : futures) EXPECT_EQ(f.get().outcome, Outcome::Failed);
  // The collapsed engine sheds new arrivals instead of queueing them.
  const Response late = engine.submit(request_for_row(x, 0)).get();
  EXPECT_EQ(late.outcome, Outcome::ShedShutdown);
  engine.drain();
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_EQ(s.failed, 4u);
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.worker_restarts, 0u);
}

// ---- hangs: hedging and escalation ------------------------------------------

TEST(SupervisedEngineTest, HedgedDuplicateRacesHungWorkerFirstResultWins) {
  const Model m = mlp(8, 32, 4, 3);
  const Tensor x = random_inputs(32, 8, 23);

  // Worker 0 stalls 200ms on its first batch.  The hedge fires at 5ms and a
  // healthy sibling serves the duplicate; when the sleeper wakes, its
  // results lose the exactly-once race and are discarded — never
  // double-counted.  Retirement is disabled (huge hang threshold) so this
  // isolates the hedging path.
  FaultSchedule schedule;
  schedule.hang_worker(0, 0, 0.2);
  FaultInjector injector(std::move(schedule));

  SupervisedOptions opt;
  opt.workers = 2;
  opt.batch.max_batch = 4;
  opt.batch.max_wait_s = 1e-3;
  opt.supervise.hedge_min_age_s = 5e-3;
  opt.supervise.hang_min_age_s = 10.0;
  opt.supervise.hang_latency_mult = 1e6;
  SupervisedEngine engine(m, opt, &injector);
  // The hang is keyed to worker 0's first batch, but on a loaded single-core
  // host one worker can drain an entire wave before its sibling is ever
  // scheduled — then that batch does not exist yet.  Submit waves until
  // worker 0 takes its first batch and the hang fires; every wave must
  // complete either way, so the assertions below are unchanged.
  std::uint64_t submitted = 0;
  for (int wave = 0; wave < 50; ++wave) {
    std::vector<std::future<Response>> futures;
    for (Index i = 0; i < 32; ++i) {
      futures.push_back(engine.submit(request_for_row(x, i)));
    }
    submitted += 32;
    for (auto& f : futures) EXPECT_EQ(f.get().outcome, Outcome::Completed);
    if (count_log(injector, FaultKind::WorkerHang, "injected") == 1) break;
  }
  engine.drain();
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_EQ(s.completed, submitted);
  EXPECT_EQ(s.failed, 0u);
  EXPECT_GE(s.hedges_launched, 1u);
  // Both copies of the hung batch executed: one side won each row, the
  // other was discarded.  Wins + losses together cover the duplicated rows
  // exactly — nothing lost, nothing double-resolved (the accounting above
  // would catch either).
  EXPECT_GE(s.hedge_wins + s.hedge_losses, 1u);
  EXPECT_EQ(s.worker_hangs, 0u);  // escalation disabled
  EXPECT_EQ(count_log(injector, FaultKind::WorkerHang, "injected"), 1);
}

TEST(SupervisedEngineTest, PersistentHangEscalatesToRetirement) {
  const Model m = mlp(8, 32, 4, 3);
  const Tensor x = random_inputs(32, 8, 29);

  // A 400ms stall blows through the 30ms hang threshold (wide margin for
  // loaded/TSan CI hosts): the watchdog must retire the sleeper, re-dispatch
  // its rows, and spawn a replacement with a fresh id.  The retired worker
  // finishes its last batch and exits.
  FaultSchedule schedule;
  schedule.hang_worker(0, 0, 0.4);
  FaultInjector injector(std::move(schedule));

  SupervisedOptions opt;
  opt.workers = 2;
  opt.batch.max_batch = 4;
  opt.batch.max_wait_s = 1e-3;
  opt.supervise.hedge_min_age_s = 5e-3;
  opt.supervise.hang_min_age_s = 30e-3;
  SupervisedEngine engine(m, opt, &injector);
  std::vector<std::future<Response>> futures;
  for (Index i = 0; i < 32; ++i) {
    futures.push_back(engine.submit(request_for_row(x, i)));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().outcome, Outcome::Completed);
  // The replacement spawns on a watchdog tick after its backoff elapses;
  // give it a moment before drain (which would otherwise cancel a pending
  // restart for lack of remaining work).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (engine.stats().worker_restarts == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine.drain();
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_EQ(s.completed, 32u);
  EXPECT_EQ(s.worker_hangs, 1u);
  EXPECT_GE(s.worker_restarts, 1u);
  EXPECT_EQ(count_log(injector, FaultKind::WorkerHang, "detected"), 1);
}

// ---- silent corruption ------------------------------------------------------

TEST(SupervisedEngineTest, PoisonedBatchIsRecomputedBitIdentical) {
  const Model m = mlp(8, 32, 4, 3);
  const Tensor x = random_inputs(8, 8, 31);
  const Tensor expected = m.predict(x, 8);
  const Index out_f = expected.numel() / expected.dim(0);

  FaultSchedule schedule;
  schedule.corrupt_batch(/*batch=*/0, /*worker=*/0, /*entries=*/3);
  FaultInjector injector(std::move(schedule));

  SupervisedOptions opt;
  opt.workers = 1;
  opt.batch.max_batch = 8;
  opt.batch.max_wait_s = 0.05;
  SupervisedEngine engine(m, opt, &injector);
  std::vector<std::future<Response>> futures;
  for (Index i = 0; i < 8; ++i) {
    futures.push_back(engine.submit(request_for_row(x, i)));
  }
  for (auto& f : futures) {
    const Response r = f.get();
    ASSERT_EQ(r.outcome, Outcome::Completed);
    const Index row = static_cast<Index>(r.id);
    for (Index j = 0; j < out_f; ++j) {
      const float v = r.output[static_cast<std::size_t>(j)];
      ASSERT_TRUE(std::isfinite(v));
      ASSERT_EQ(v, expected[row * out_f + j]);  // recompute is bit-exact
    }
  }
  engine.drain();
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_EQ(s.corruption_retries, 1u);
  EXPECT_EQ(count_log(injector, FaultKind::BatchCorruption, "recovered"), 1);
}

// ---- brownout degradation ---------------------------------------------------

TEST(SupervisedEngineTest, BrownoutEngagesWhileThePoolIsDownAndSheds) {
  const Model m = mlp(8, 16, 4, 3);
  const Tensor x = random_inputs(8, 8, 37);

  FaultSchedule schedule;
  schedule.kill_worker(0, 0);
  FaultInjector injector(std::move(schedule));

  SupervisedOptions opt;
  opt.workers = 1;
  opt.batch.max_batch = 4;
  opt.batch.max_wait_s = 0.05;
  opt.batch.queue_capacity = 16;
  opt.batch.brownout_queue_frac = 0.25;  // effective queue of 4 in brownout
  opt.supervise.hedging = false;
  opt.supervise.restart_backoff_s = 0.05;  // generous MTTR window to observe
  opt.supervise.restart_backoff_max_s = 0.05;
  SupervisedEngine engine(m, opt, &injector);

  // Trigger the crash, then wait for the watchdog to flip brownout while
  // the pool is down (live 0 < configured 1, replacement still backing
  // off).
  std::vector<std::future<Response>> futures;
  for (Index i = 0; i < 4; ++i) {
    futures.push_back(engine.submit(request_for_row(x, i)));
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!engine.brownout() &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(engine.brownout()) << "watchdog never engaged brownout";
  // Flood during the brownout window: admission is tightened to the
  // shrunken effective queue, so the flood sheds ShedBrownout well before
  // the hard ShedQueueFull bound.
  for (Index i = 0; i < 100; ++i) {
    futures.push_back(engine.submit(request_for_row(x, i % 8)));
  }
  for (auto& f : futures) {
    const Outcome o = f.get().outcome;
    ASSERT_TRUE(o == Outcome::Completed || o == Outcome::ShedBrownout ||
                o == Outcome::ShedQueueFull || o == Outcome::Failed)
        << serve::outcome_name(o);
  }
  engine.drain();
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_GE(s.brownout_entries, 1u);
  EXPECT_GT(s.shed_brownout, 0u);
  EXPECT_EQ(s.worker_crashes, 1u);
}

// ---- seeded chaos mix -------------------------------------------------------

TEST(SupervisedEngineTest, SeededChaosMixKeepsExactAccountingBitIdentical) {
  const Model m = mlp(8, 32, 4, 3);
  const Tensor x = random_inputs(64, 8, 41);
  const Tensor expected = m.predict(x, 64);
  const Index out_f = expected.numel() / expected.dim(0);

  // Crashes, hangs and corruptions drawn from one seeded schedule, three
  // producer threads, three workers.  Whatever the interleaving: every
  // future resolves exactly once, completed outputs are bit-identical to
  // serial predict, and the extended invariant closes after drain.
  FaultInjector injector(
      serving_chaos_schedule(/*seed=*/1234, /*batches=*/12, /*workers=*/3,
                             /*kills=*/2, /*hangs=*/2, /*corruptions=*/2,
                             /*hang_delay_s=*/0.03));

  SupervisedOptions opt;
  opt.workers = 3;
  opt.batch.max_batch = 4;
  opt.batch.max_wait_s = 1e-3;
  opt.supervise.hedge_min_age_s = 10e-3;
  opt.supervise.hang_min_age_s = 60e-3;
  SupervisedEngine engine(m, opt, &injector);

  constexpr int kThreads = 3;
  constexpr int kPerThread = 100;
  std::vector<std::vector<std::future<Response>>> futures(kThreads);
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const Index row = (t * kPerThread + i) % 64;
        futures[static_cast<std::size_t>(t)].push_back(
            engine.submit(request_for_row(x, row)));
      }
    });
  }
  for (auto& p : producers) p.join();
  engine.drain();

  std::uint64_t completed = 0, failed = 0, shed = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      const Response r = f.get();
      if (r.outcome == Outcome::Completed) {
        ++completed;
        const Index row = static_cast<Index>(r.id);
        for (Index j = 0; j < out_f; ++j) {
          ASSERT_EQ(r.output[static_cast<std::size_t>(j)],
                    expected[row * out_f + j]);
        }
      } else if (r.outcome == Outcome::Failed) {
        ++failed;
      } else {
        ++shed;
      }
    }
  }
  const EngineStats s = engine.stats();
  expect_exact_accounting(s);
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.completed, completed);
  EXPECT_EQ(s.failed, failed);
  EXPECT_EQ(s.shed_total(), shed);
  // The schedule carried real faults and the engine survived them.
  EXPECT_GE(s.worker_crashes + s.worker_hangs + s.corruption_retries, 1u);
}

// ---- hpcsim: degraded-capacity closed forms vs seeded simulation ------------

TEST(ServingFaultModelTest, AvailabilityAndEfficiencyClosedForms) {
  hpcsim::ServingFaultModel m;
  m.worker_mtbf_s = 99.0;
  m.worker_mttr_s = 1.0;
  EXPECT_DOUBLE_EQ(hpcsim::serving_availability(m), 0.99);
  m.hang_prob = 0.0;
  EXPECT_DOUBLE_EQ(hpcsim::serving_efficiency(m), 1.0);
  // Without hedging a stall costs its full expected duration.
  m.hang_prob = 0.1;
  m.hang_mean_s = 0.05;
  m.batch_service_s = 0.01;
  m.hedging = false;
  EXPECT_NEAR(hpcsim::serving_efficiency(m), 0.01 / (0.01 + 0.1 * 0.05),
              1e-12);
  // Hedging beats eating stalls whole when stalls are long relative to the
  // hang-declare cap (the reclaim bounds the slot-time a sleeper can burn).
  // For short stalls it costs a little capacity — duplicate work — which is
  // the latency/throughput trade the policy makes deliberately.
  hpcsim::ServingFaultModel long_stalls = m;
  long_stalls.hang_mean_s = 0.5;
  hpcsim::ServingFaultModel hedged = long_stalls;
  hedged.hedging = true;
  EXPECT_GT(hpcsim::serving_efficiency(hedged),
            hpcsim::serving_efficiency(long_stalls));
  // Capacity scales linearly with the surviving pool.
  const double c0 = hpcsim::degraded_serving_capacity_bps(hedged, 0);
  const double c1 = hpcsim::degraded_serving_capacity_bps(hedged, 1);
  EXPECT_NEAR(c1 / c0, 3.0 / 4.0, 1e-12);
}

TEST(ServingFaultModelTest, ClosedFormPinsAgainstSeededSimulation) {
  hpcsim::ServingFaultModel m;
  m.workers = 4;
  m.batch_service_s = 0.01;
  m.worker_mtbf_s = 5.0;    // crashes matter but MTBF >> batch service
  m.worker_mttr_s = 0.5;
  m.hang_prob = 0.05;
  m.hang_mean_s = 0.08;
  for (const bool hedging : {false, true}) {
    m.hedging = hedging;
    for (const Index failed : {Index{0}, Index{2}}) {
      const double analytic =
          hpcsim::degraded_serving_capacity_bps(m, failed);
      const double simulated = hpcsim::simulate_serving_capacity_bps(
          m, failed, /*duration_s=*/50.0, /*trials=*/40, /*seed=*/7);
      if (failed == m.workers) continue;
      EXPECT_NEAR(simulated / analytic, 1.0, 0.1)
          << "hedging=" << hedging << " failed=" << failed
          << " analytic=" << analytic << " simulated=" << simulated;
    }
  }
  // The simulation replays bit-identically from its seed.
  EXPECT_DOUBLE_EQ(
      hpcsim::simulate_serving_capacity_bps(m, 1, 10.0, 5, 99),
      hpcsim::simulate_serving_capacity_bps(m, 1, 10.0, 5, 99));
}

TEST(ServingFaultModelTest, DegradedServingEstimateScalesCapacity) {
  hpcsim::ServingPlan plan;
  plan.workers = 4;
  plan.max_batch = 32;
  plan.measured_batch_service_s = 0.01;
  hpcsim::TrainingWorkload w;  // unused with the measured override
  hpcsim::ServingFaultModel faults;
  faults.worker_mtbf_s = 1e9;  // failures negligible: pure pool shrink
  faults.hang_prob = 0.0;
  const auto healthy = hpcsim::estimate_degraded_serving(
      hpcsim::summit_node(), w, plan, 1000.0, faults, 0);
  EXPECT_NEAR(healthy.capacity_ratio, 1.0, 1e-6);
  EXPECT_NEAR(healthy.base.capacity_rps, 4.0 * 32.0 / 0.01, 1.0);
  const auto degraded = hpcsim::estimate_degraded_serving(
      hpcsim::summit_node(), w, plan, 1000.0, faults, 2);
  EXPECT_NEAR(degraded.capacity_ratio, 0.5, 1e-6);
  EXPECT_NEAR(degraded.base.capacity_rps, healthy.base.capacity_rps * 0.5,
              1.0);
  // Hangs without hedging cost more capacity than with it.
  faults.hang_prob = 0.1;
  faults.hang_mean_s = 0.1;
  faults.hedging = false;
  const auto unhedged = hpcsim::estimate_degraded_serving(
      hpcsim::summit_node(), w, plan, 1000.0, faults, 0);
  faults.hedging = true;
  const auto hedged = hpcsim::estimate_degraded_serving(
      hpcsim::summit_node(), w, plan, 1000.0, faults, 0);
  EXPECT_LT(unhedged.capacity_ratio, hedged.capacity_ratio);
  EXPECT_LT(hedged.capacity_ratio, 1.0);
}

}  // namespace
}  // namespace candle

// Scheduler + campaign tests: event-simulator invariants (no
// oversubscription, FIFO ordering, backfill improvements) and asynchronous
// HPO campaign behaviour (slot reuse, trajectory monotonicity, search
// parallelism speedup).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "hpo/objectives.hpp"
#include "sched/campaign.hpp"
#include "sched/cluster.hpp"

namespace candle::sched {
namespace {

TEST(Cluster, SingleJobRunsImmediately) {
  ClusterSim sim(4, SchedulePolicy::Fifo);
  const Index id = sim.submit(2, 10.0);
  sim.run();
  const Job& j = sim.job(id);
  EXPECT_EQ(j.start_s, 0.0);
  EXPECT_EQ(j.finish_s, 10.0);
  EXPECT_EQ(sim.makespan(), 10.0);
  EXPECT_NEAR(sim.utilization(), 0.5, 1e-12);
  EXPECT_EQ(sim.mean_wait_s(), 0.0);
}

TEST(Cluster, SerializesWhenMachineIsFull) {
  ClusterSim sim(4, SchedulePolicy::Fifo);
  sim.submit(4, 5.0);
  sim.submit(4, 5.0);
  sim.run();
  EXPECT_EQ(sim.job(0).start_s, 0.0);
  EXPECT_EQ(sim.job(1).start_s, 5.0);
  EXPECT_EQ(sim.makespan(), 10.0);
  EXPECT_NEAR(sim.utilization(), 1.0, 1e-12);
}

TEST(Cluster, RunsJobsConcurrentlyWhenTheyFit) {
  ClusterSim sim(8, SchedulePolicy::Fifo);
  for (int i = 0; i < 4; ++i) sim.submit(2, 10.0);
  sim.run();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(sim.job(i).start_s, 0.0);
  EXPECT_EQ(sim.makespan(), 10.0);
}

TEST(Cluster, NeverOversubscribes) {
  // Property: at any event time, running jobs' nodes <= total nodes.
  ClusterSim sim(7, SchedulePolicy::Backfill);
  Pcg32 rng(5);
  for (int i = 0; i < 60; ++i) {
    sim.submit(1 + static_cast<Index>(rng.next_below(7)),
               1.0 + 10.0 * rng.next_double(), 5.0 * rng.next_double());
  }
  sim.run();
  // Check overlap load at each job start.
  for (const Job& a : sim.jobs()) {
    Index load = 0;
    for (const Job& b : sim.jobs()) {
      if (b.start_s <= a.start_s && a.start_s < b.finish_s) load += b.nodes;
    }
    EXPECT_LE(load, 7) << "oversubscribed at t=" << a.start_s;
    EXPECT_GE(a.start_s, a.submit_s);
    EXPECT_EQ(a.finish_s, a.start_s + a.duration_s);
  }
}

TEST(Cluster, FifoRespectsHeadOfLine) {
  // A wide job at the head must block later narrow jobs under FIFO.
  ClusterSim sim(4, SchedulePolicy::Fifo);
  sim.submit(4, 10.0, 0.0);  // head occupies everything
  sim.submit(4, 10.0, 1.0);  // second wide job queues
  sim.submit(1, 1.0, 2.0);   // narrow latecomer
  sim.run();
  EXPECT_GE(sim.job(2).start_s, sim.job(1).start_s);  // no overtaking
}

TEST(Cluster, BackfillImprovesUtilization) {
  // Same trace under FIFO vs backfill: backfill must not be worse.
  const auto build = [](SchedulePolicy p) {
    ClusterSim sim(8, p);
    sim.submit(6, 10.0, 0.0);  // leaves 2 nodes idle
    sim.submit(8, 10.0, 0.5);  // queued wide job -> shadow at t=10
    for (int i = 0; i < 6; ++i) sim.submit(2, 2.0, 1.0);  // backfillable
    sim.run();
    return sim.makespan();
  };
  const double fifo = build(SchedulePolicy::Fifo);
  const double backfill = build(SchedulePolicy::Backfill);
  EXPECT_LE(backfill, fifo);
  EXPECT_LT(backfill, fifo - 1.0) << "backfill should slot the short jobs in";
}

TEST(Cluster, BackfillNeverDelaysHeadJob) {
  ClusterSim sim(8, SchedulePolicy::Backfill);
  sim.submit(8, 10.0, 0.0);
  const Index head = sim.submit(8, 10.0, 0.5);
  for (int i = 0; i < 10; ++i) sim.submit(2, 100.0, 1.0);  // too long to fit
  sim.run();
  EXPECT_EQ(sim.job(head).start_s, 10.0) << "EASY reservation violated";
}

TEST(Cluster, Validation) {
  EXPECT_THROW(ClusterSim(0, SchedulePolicy::Fifo), Error);
  ClusterSim sim(4, SchedulePolicy::Fifo);
  EXPECT_THROW(sim.submit(5, 1.0), Error);
  EXPECT_THROW(sim.submit(1, 0.0), Error);
  EXPECT_THROW(sim.makespan(), Error);  // before run
  sim.submit(1, 1.0);
  sim.run();
  EXPECT_THROW(sim.submit(1, 1.0), Error);  // after run
  EXPECT_THROW(sim.run(), Error);
  EXPECT_THROW(sim.job(99), Error);
}

// ---- campaigns ------------------------------------------------------------------

TEST(Campaign, TrajectoryIsMonotoneNonIncreasing) {
  const hpo::SearchSpace s = hpo::make_mlp_space();
  hpo::RandomSearcher searcher(s, 7);
  const hpo::Objective f = hpo::make_sphere_objective(s, 8);
  const DurationModel d = [](const hpo::UnitConfig&, Index epochs) {
    return 10.0 * static_cast<double>(epochs);
  };
  CampaignOptions opts;
  opts.slots = 4;
  opts.max_trials = 32;
  const CampaignResult r = run_campaign(searcher, f, d, opts);
  ASSERT_EQ(r.trials, 32);
  ASSERT_EQ(r.trajectory.size(), 32u);
  for (std::size_t i = 1; i < r.trajectory.size(); ++i) {
    EXPECT_LE(r.trajectory[i].objective, r.trajectory[i - 1].objective);
    EXPECT_GE(r.trajectory[i].time_s, r.trajectory[i - 1].time_s);
  }
  EXPECT_DOUBLE_EQ(r.trajectory.back().objective, r.best_objective);
  // 32 trials x 80s over 4 slots: makespan = 8 waves x 80s.
  EXPECT_NEAR(r.makespan_s, 8 * 80.0, 1e-9);
}

TEST(Campaign, MoreSlotsFinishSoonerInSimulatedTime) {
  const hpo::SearchSpace s = hpo::make_mlp_space();
  const hpo::Objective f = hpo::make_sphere_objective(s, 18);
  const DurationModel d = [](const hpo::UnitConfig&, Index) { return 60.0; };
  CampaignOptions narrow, wide;
  narrow.slots = 2;
  wide.slots = 16;
  narrow.max_trials = wide.max_trials = 64;
  hpo::RandomSearcher s1(s, 19), s2(s, 19);
  const double t_narrow = run_campaign(s1, f, d, narrow).makespan_s;
  const double t_wide = run_campaign(s2, f, d, wide).makespan_s;
  EXPECT_NEAR(t_narrow / t_wide, 8.0, 1e-9);  // search parallelism speedup
}

TEST(Campaign, BestAtTimeInterpolates) {
  const hpo::SearchSpace s = hpo::make_mlp_space();
  hpo::RandomSearcher searcher(s, 27);
  const hpo::Objective f = hpo::make_sphere_objective(s, 28);
  const DurationModel d = [](const hpo::UnitConfig&, Index) { return 10.0; };
  CampaignOptions opts;
  opts.slots = 1;
  opts.max_trials = 10;
  const CampaignResult r = run_campaign(searcher, f, d, opts);
  EXPECT_TRUE(std::isinf(r.best_at_time(5.0)));  // nothing finished yet
  EXPECT_DOUBLE_EQ(r.best_at_time(1e9), r.best_objective);
  EXPECT_GE(r.best_at_time(25.0), r.best_objective);
}

TEST(Campaign, AshaCampaignConsumesFewerSimulatedNodeSeconds) {
  const hpo::SearchSpace s = hpo::make_mlp_space();
  const hpo::Objective full = hpo::make_sphere_objective(s, 38);
  const BudgetedObjective budgeted =
      [&](const hpo::UnitConfig& c, Index epochs) {
        // Fidelity bias decays with budget.
        return full(c) + 0.3 / static_cast<double>(epochs);
      };
  const DurationModel d = [](const hpo::UnitConfig&, Index epochs) {
    return static_cast<double>(epochs);  // time == epochs
  };
  CampaignOptions opts;
  opts.slots = 8;
  opts.max_trials = 64;
  opts.epochs = 9;

  hpo::SuccessiveHalving asha(std::make_unique<hpo::RandomSearcher>(s, 39),
                              1, 9, 3);
  const CampaignResult asha_result =
      run_asha_campaign(asha, budgeted, d, opts);

  hpo::RandomSearcher full_searcher(s, 39);
  const hpo::Objective full_obj = [&](const hpo::UnitConfig& c) {
    return budgeted(c, 9);
  };
  const CampaignResult full_result =
      run_campaign(full_searcher, full_obj, d, opts);

  // Same trial count, but ASHA spends far less simulated time because most
  // trials stop at low rungs.
  EXPECT_LT(asha_result.makespan_s, full_result.makespan_s * 0.7);
  EXPECT_TRUE(std::isfinite(asha_result.best_objective));
}

TEST(Campaign, Validation) {
  const hpo::SearchSpace s = hpo::make_mlp_space();
  hpo::RandomSearcher searcher(s, 47);
  const hpo::Objective f = hpo::make_sphere_objective(s, 48);
  CampaignOptions bad;
  bad.slots = 0;
  EXPECT_THROW(run_campaign(
                   searcher, f,
                   [](const hpo::UnitConfig&, Index) { return 1.0; }, bad),
               Error);
  CampaignOptions opts;
  opts.max_trials = 2;
  EXPECT_THROW(run_campaign(
                   searcher, f,
                   [](const hpo::UnitConfig&, Index) { return 0.0; }, opts),
               Error);  // non-positive duration
}

}  // namespace
}  // namespace candle::sched

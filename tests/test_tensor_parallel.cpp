// Tests for executable tensor (intra-layer) model parallelism, the host
// calibration module, and synthetic scheduler traces.
#include <gtest/gtest.h>

#include <cmath>

#include "hpcsim/calibrate.hpp"
#include "nn/layer.hpp"
#include "parallel/tensor_parallel.hpp"
#include "sched/traces.hpp"

namespace candle {
namespace {

// ---- ShardedDense --------------------------------------------------------------

std::unique_ptr<Dense> built_dense(Index in, Index out, std::uint64_t seed) {
  auto layer = std::make_unique<Dense>(out);
  Pcg32 rng(seed);
  layer->build({in}, rng);
  return layer;
}

class ShardedDenseEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(ShardedDenseEquivalence, ForwardMatchesUnsharded) {
  const Index shards = GetParam();
  auto dense = built_dense(10, 12, 1);
  parallel::ShardedDense sharded(*dense, shards);
  EXPECT_EQ(sharded.shards(), shards);
  Pcg32 rng(2);
  Tensor x = Tensor::randn({7, 10}, rng);
  const Tensor full = dense->forward(x, false);
  const Tensor split = sharded.forward(x);
  EXPECT_LE(max_abs_diff(full, split), 1e-6f);
}

TEST_P(ShardedDenseEquivalence, BackwardMatchesUnsharded) {
  const Index shards = GetParam();
  auto dense = built_dense(6, 9, 3);
  parallel::ShardedDense sharded(*dense, shards);
  Pcg32 rng(4);
  Tensor x = Tensor::randn({5, 6}, rng);
  Tensor dy = Tensor::randn({5, 9}, rng);
  dense->forward(x, false);
  const Tensor dx_full = dense->backward(dy);
  sharded.forward(x);
  const Tensor dx_split = sharded.backward(dy);
  EXPECT_LE(max_abs_diff(dx_full, dx_split), 1e-5f);
  // Concatenated shard weight grads equal the full dW.
  const Tensor& dw_full = *dense->grads()[0];
  Index col = 0;
  for (Index s = 0; s < shards; ++s) {
    const Tensor& dws = sharded.weight_grad(s);
    for (Index j = 0; j < dws.dim(1); ++j, ++col) {
      for (Index i = 0; i < 6; ++i) {
        EXPECT_NEAR(dws.at(i, j), dw_full.at(i, col), 1e-5f);
      }
    }
    // Bias grads too.
    const Tensor& dbs = sharded.bias_grad(s);
    EXPECT_EQ(dbs.numel(), dws.dim(1));
  }
  EXPECT_EQ(col, 9);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardedDenseEquivalence,
                         ::testing::Values(1, 2, 3, 4, 9));

TEST(ShardedDense, ThreadedScheduleMatches) {
  auto dense = built_dense(8, 16, 5);
  parallel::ShardedDense sharded(*dense, 4);
  Pcg32 rng(6);
  Tensor x = Tensor::randn({6, 8}, rng);
  const Tensor serial = dense->forward(x, false);
  const Tensor threaded = parallel::sharded_dense_forward_threaded(sharded, x);
  EXPECT_LE(max_abs_diff(serial, threaded), 1e-6f);
}

TEST(ShardedDense, WireAccounting) {
  auto dense = built_dense(32, 64, 7);
  parallel::ShardedDense sharded(*dense, 4);
  // Forward: each shard receives the other 3/4 of a (8 x 64) fp32 tensor.
  EXPECT_DOUBLE_EQ(sharded.forward_wire_bytes(8), 0.75 * 4.0 * 8 * 64);
  // Backward: ring-reduce of the (8 x 32) dx partials.
  EXPECT_DOUBLE_EQ(sharded.backward_wire_bytes(8),
                   2.0 * 3.0 / 4.0 * 4.0 * 8 * 32);
  parallel::ShardedDense solo(*dense, 1);
  EXPECT_DOUBLE_EQ(solo.backward_wire_bytes(8), 0.0);
}

TEST(ShardedDense, Validation) {
  auto dense = built_dense(4, 4, 8);
  EXPECT_THROW(parallel::ShardedDense(*dense, 0), Error);
  EXPECT_THROW(parallel::ShardedDense(*dense, 5), Error);
  parallel::ShardedDense ok(*dense, 2);
  EXPECT_THROW(ok.forward(Tensor({2, 5})), Error);
  EXPECT_THROW(ok.weight_grad(2), Error);
}

// ---- calibration ---------------------------------------------------------------

TEST(Calibration, ProducesPlausibleRates) {
  const auto cal = hpcsim::calibrate_host(128, 512);
  EXPECT_GT(cal.gemm_gflops, 0.1);
  EXPECT_GT(cal.gemv_gflops, 0.01);
  // GEMM must beat GEMV (the compute-density story measured locally).
  EXPECT_GT(cal.gemm_gflops, cal.gemv_gflops);
  EXPECT_GT(cal.stream_gbs, 0.01);
  EXPECT_GT(cal.seconds_spent, 0.0);
  EXPECT_LT(cal.seconds_spent, 30.0);
}

TEST(Calibration, BuildsUsableNodeSpec) {
  hpcsim::CalibrationResult cal;
  cal.gemm_gflops = 25.0;
  cal.gemv_gflops = 1.0;
  cal.stream_gbs = 8.0;
  const hpcsim::NodeSpec node = hpcsim::calibrated_host_node(cal);
  EXPECT_EQ(node.name, "calibrated-host");
  EXPECT_DOUBLE_EQ(node.peak_fp32_gflops, 25.0);
  EXPECT_DOUBLE_EQ(node.nearest().bandwidth_gbs, 8.0);
  // Usable in the roofline immediately.
  const auto est = hpcsim::roofline(node, 1e9, 1e6, Precision::FP32);
  EXPECT_GT(est.time_s, 0.0);
  hpcsim::CalibrationResult empty;
  EXPECT_THROW(hpcsim::calibrated_host_node(empty), Error);
}

// ---- traces --------------------------------------------------------------------

TEST(Traces, DeterministicAndWellFormed) {
  sched::TraceConfig cfg;
  cfg.jobs = 100;
  cfg.max_nodes = 256;
  const auto t1 = sched::generate_trace(cfg);
  const auto t2 = sched::generate_trace(cfg);
  ASSERT_EQ(t1.size(), 100u);
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_EQ(t1[i].nodes, t2[i].nodes);
    EXPECT_EQ(t1[i].submit_s, t2[i].submit_s);
    EXPECT_GE(t1[i].duration_s, 1.0);
    EXPECT_GE(t1[i].nodes, 1);
    EXPECT_LE(t1[i].nodes, 256);
    // Power-of-two requests.
    EXPECT_EQ(t1[i].nodes & (t1[i].nodes - 1), 0);
    if (i > 0) {
      EXPECT_GE(t1[i].submit_s, t1[i - 1].submit_s);
    }
  }
}

TEST(Traces, ArrivalRateApproximatelyPoisson) {
  sched::TraceConfig cfg;
  cfg.jobs = 2000;
  cfg.arrivals_per_hour = 60.0;  // one per minute
  const auto trace = sched::generate_trace(cfg);
  const double span_h = trace.back().submit_s / 3600.0;
  EXPECT_NEAR(static_cast<double>(cfg.jobs) / span_h, 60.0, 6.0);
}

TEST(Traces, BackfillBeatsFifoOnMixedTrace) {
  sched::TraceConfig cfg;
  cfg.jobs = 150;
  cfg.max_nodes = 128;
  cfg.seed = 5;
  const auto trace = sched::generate_trace(cfg);
  const auto fifo = sched::run_trace(128, sched::SchedulePolicy::Fifo, trace);
  const auto bf = sched::run_trace(128, sched::SchedulePolicy::Backfill, trace);
  EXPECT_LE(bf.mean_wait_s, fifo.mean_wait_s + 1e-9);
  EXPECT_LE(bf.makespan_s, fifo.makespan_s + 1e-9);
  EXPECT_GE(bf.utilization, fifo.utilization - 1e-9);
  EXPECT_GE(fifo.p95_wait_s, fifo.mean_wait_s);  // heavy tail sanity
}

TEST(Traces, Validation) {
  sched::TraceConfig bad;
  bad.jobs = 0;
  EXPECT_THROW(sched::generate_trace(bad), Error);
  bad = {};
  bad.arrivals_per_hour = 0.0;
  EXPECT_THROW(sched::generate_trace(bad), Error);
}

}  // namespace
}  // namespace candle

// Tests for dataset containers, slicing/splitting, batch iteration, and
// feature standardization.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "nn/dataset.hpp"

namespace candle {
namespace {

Dataset counting_dataset(Index n, Index f) {
  Dataset d{Tensor({n, f}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    d.y[i] = static_cast<float>(i);
    for (Index j = 0; j < f; ++j) d.x.at(i, j) = static_cast<float>(i * f + j);
  }
  return d;
}

TEST(Dataset, SizeAndSampleShape) {
  Dataset d = counting_dataset(10, 3);
  EXPECT_EQ(d.size(), 10);
  EXPECT_EQ(d.sample_shape(), (Shape{3}));
}

TEST(Dataset, SliceCopiesRows) {
  Dataset d = counting_dataset(10, 2);
  Dataset s = slice(d, 3, 6);
  EXPECT_EQ(s.size(), 3);
  EXPECT_EQ(s.x.at(0, 0), 6.0f);
  EXPECT_EQ(s.y[2], 5.0f);
  EXPECT_THROW(slice(d, 5, 3), Error);
  EXPECT_THROW(slice(d, 0, 11), Error);
}

TEST(Dataset, GatherReordersRows) {
  Dataset d = counting_dataset(5, 1);
  std::vector<Index> idx = {4, 0, 2};
  Dataset g = gather(d, idx);
  EXPECT_EQ(g.y[0], 4.0f);
  EXPECT_EQ(g.y[1], 0.0f);
  EXPECT_EQ(g.y[2], 2.0f);
  std::vector<Index> bad = {7};
  EXPECT_THROW(gather(d, bad), Error);
}

TEST(Dataset, SplitIsPartition) {
  Dataset d = counting_dataset(100, 1);
  auto [a, b] = split(d, 0.8, 42);
  EXPECT_EQ(a.size(), 80);
  EXPECT_EQ(b.size(), 20);
  std::set<float> seen;
  for (Index i = 0; i < a.size(); ++i) seen.insert(a.y[i]);
  for (Index i = 0; i < b.size(); ++i) seen.insert(b.y[i]);
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Dataset, SplitIsDeterministic) {
  Dataset d = counting_dataset(50, 1);
  auto [a1, b1] = split(d, 0.5, 7);
  auto [a2, b2] = split(d, 0.5, 7);
  EXPECT_EQ(max_abs_diff(a1.y, a2.y), 0.0f);
  auto [a3, b3] = split(d, 0.5, 8);
  EXPECT_GT(max_abs_diff(a1.y, a3.y), 0.0f);  // different seed, different mix
}

TEST(BatchIterator, CoversEpochExactly) {
  Dataset d = counting_dataset(10, 1);
  BatchIterator it(d, 3, /*shuffle=*/false, 0);
  EXPECT_EQ(it.batches_per_epoch(), 4);
  std::multiset<float> seen;
  for (Index b = 0; b < 4; ++b) {
    Dataset batch = it.next();
    for (Index i = 0; i < batch.size(); ++i) seen.insert(batch.y[i]);
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(it.epoch(), 0);
  it.next();
  EXPECT_EQ(it.epoch(), 1);
}

TEST(BatchIterator, LastBatchIsShort) {
  Dataset d = counting_dataset(10, 1);
  BatchIterator it(d, 4, false, 0);
  EXPECT_EQ(it.next().size(), 4);
  EXPECT_EQ(it.next().size(), 4);
  EXPECT_EQ(it.next().size(), 2);
}

TEST(BatchIterator, ShuffleChangesOrderButNotContent) {
  Dataset d = counting_dataset(64, 1);
  BatchIterator it(d, 64, true, 5);
  Dataset e1 = it.next();
  Dataset e2 = it.next();
  // Same multiset of rows.
  std::multiset<float> s1, s2;
  for (Index i = 0; i < 64; ++i) {
    s1.insert(e1.y[i]);
    s2.insert(e2.y[i]);
  }
  EXPECT_EQ(s1, s2);
  // Different order across epochs (probability of equality ~ 1/64!).
  EXPECT_GT(max_abs_diff(e1.y, e2.y), 0.0f);
}

TEST(BatchIterator, DeterministicForSeed) {
  Dataset d = counting_dataset(32, 1);
  BatchIterator i1(d, 8, true, 9), i2(d, 8, true, 9);
  for (int b = 0; b < 8; ++b) {
    EXPECT_EQ(max_abs_diff(i1.next().y, i2.next().y), 0.0f);
  }
}

TEST(BatchIterator, RejectsBadArguments) {
  Dataset d = counting_dataset(4, 1);
  EXPECT_THROW(BatchIterator(d, 0, false, 0), Error);
  Dataset empty{Tensor({0, 2}), Tensor({0})};
  EXPECT_THROW(BatchIterator(empty, 1, false, 0), Error);
}

TEST(Standardizer, ZeroMeanUnitVariance) {
  Pcg32 rng(11);
  Tensor x = Tensor::randn({500, 4}, rng, 3.0f, 2.5f);
  Standardizer s = Standardizer::fit(x);
  s.apply(x);
  for (Index j = 0; j < 4; ++j) {
    double mean = 0, sq = 0;
    for (Index i = 0; i < 500; ++i) {
      mean += x.at(i, j);
      sq += static_cast<double>(x.at(i, j)) * x.at(i, j);
    }
    mean /= 500;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / 500 - mean * mean, 1.0, 1e-3);
  }
}

TEST(Standardizer, ConstantFeatureIsSafe) {
  Tensor x({3, 2}, {5, 1, 5, 2, 5, 3});
  Standardizer s = Standardizer::fit(x);
  s.apply(x);
  for (Index i = 0; i < 3; ++i) {
    EXPECT_EQ(x.at(i, 0), 0.0f);  // centred, unit scale, no NaN
    EXPECT_TRUE(std::isfinite(x.at(i, 1)));
  }
}

TEST(Standardizer, ApplyToNewDataUsesTrainStatistics) {
  Tensor train({2, 1}, {0.0f, 2.0f});  // mean 1, std 1
  Standardizer s = Standardizer::fit(train);
  Tensor test({1, 1}, {3.0f});
  s.apply(test);
  EXPECT_FLOAT_EQ(test[0], 2.0f);
  Tensor wrong({1, 3});
  EXPECT_THROW(s.apply(wrong), Error);
}

}  // namespace
}  // namespace candle

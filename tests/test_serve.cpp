// Serving subsystem tests: arrival-trace determinism, the latency
// histogram, dynamic batching + admission control, the multi-worker engine
// (bit-identity with serial predict, exact shed accounting, drain), and the
// hpcsim serving estimator.  The Engine cases double as the TSan targets
// wired into CI: many producer threads against many worker threads over one
// shared const Model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <future>
#include <thread>
#include <vector>

#include "hpcsim/machine.hpp"
#include "hpcsim/perfmodel.hpp"
#include "nn/model.hpp"
#include "runtime/rng.hpp"
#include "serve/engine.hpp"

namespace candle {
namespace {

using serve::ArrivalTrace;
using serve::BatchPolicy;
using serve::DynamicBatcher;
using serve::Engine;
using serve::EngineOptions;
using serve::EngineStats;
using serve::LatencyHistogram;
using serve::Outcome;
using serve::Request;
using serve::Response;

Model mlp(Index in, Index hidden, Index out, std::uint64_t seed) {
  Model m;
  m.add(make_dense(hidden)).add(make_relu()).add(make_dense(out));
  m.build({in}, seed);
  return m;
}

Tensor random_inputs(Index n, Index features, std::uint64_t seed) {
  Pcg32 rng(seed);
  Tensor x({n, features});
  for (Index i = 0; i < x.numel(); ++i) {
    x[i] = static_cast<float>(rng.normal());
  }
  return x;
}

Request req_with_id(std::uint64_t id) {
  Request r;
  r.id = id;
  return r;
}

Request request_for_row(const Tensor& x, Index row) {
  Request r;
  r.id = static_cast<std::uint64_t>(row);
  const Index f = x.numel() / x.dim(0);
  r.input.assign(x.data() + row * f, x.data() + (row + 1) * f);
  return r;
}

// ---- arrival traces ---------------------------------------------------------

TEST(ArrivalTraces, PoissonIsDeterministicAndOnRate) {
  const ArrivalTrace a = serve::poisson_trace(500.0, 4.0, 42);
  const ArrivalTrace b = serve::poisson_trace(500.0, 4.0, 42);
  ASSERT_EQ(a.at_s.size(), b.at_s.size());
  for (std::size_t i = 0; i < a.at_s.size(); ++i) {
    EXPECT_EQ(a.at_s[i], b.at_s[i]);
  }
  // ~2000 arrivals: the empirical rate concentrates within a few percent.
  EXPECT_NEAR(a.offered_rps(), 500.0, 500.0 * 0.1);
  EXPECT_TRUE(std::is_sorted(a.at_s.begin(), a.at_s.end()));
  EXPECT_LT(a.at_s.back(), a.duration_s);

  const ArrivalTrace c = serve::poisson_trace(500.0, 4.0, 43);
  EXPECT_NE(a.at_s, c.at_s);  // different seed, different trace
}

TEST(ArrivalTraces, MmppRateSitsBetweenBaseAndBurst) {
  serve::BurstyTraffic traffic;
  traffic.base_rps = 100.0;
  traffic.burst_rps = 2000.0;
  const ArrivalTrace a = serve::mmpp_trace(traffic, 10.0, 7);
  const ArrivalTrace b = serve::mmpp_trace(traffic, 10.0, 7);
  EXPECT_EQ(a.at_s, b.at_s);
  EXPECT_TRUE(std::is_sorted(a.at_s.begin(), a.at_s.end()));
  EXPECT_GT(a.offered_rps(), traffic.base_rps);
  EXPECT_LT(a.offered_rps(), traffic.burst_rps);
}

TEST(ArrivalTraces, RejectsDegenerateParameters) {
  EXPECT_THROW(serve::poisson_trace(0.0, 1.0, 0), Error);
  EXPECT_THROW(serve::poisson_trace(10.0, 0.0, 0), Error);
}

// ---- latency histogram ------------------------------------------------------

TEST(LatencyHistogramTest, QuantilesResolveWithinBucketWidth) {
  LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(1e-3);
  h.record(1e-2);
  const auto s = h.snapshot();
  EXPECT_EQ(s.total, 101u);
  // p50 lands in the 1ms bucket; buckets are ~10% wide, so the reported
  // upper edge is within [1.0, 1.1]x the true value.
  EXPECT_GE(s.quantile(0.5), 1e-3);
  EXPECT_LE(s.quantile(0.5), 1.11e-3);
  // The single 10ms outlier is the top ~1% of 101 samples.
  EXPECT_GE(s.quantile(1.0), 1e-2);
  EXPECT_LE(s.quantile(1.0), 1.11e-2);
  EXPECT_NEAR(s.mean_s(), (100.0 * 1e-3 + 1e-2) / 101.0, 1e-9);
}

TEST(LatencyHistogramTest, ClampsOutOfRangeSamples) {
  LatencyHistogram h;
  h.record(0.0);     // below the 1us floor
  h.record(-1.0);    // nonsense, still counted
  h.record(1e12);    // past the top decade
  const auto s = h.snapshot();
  EXPECT_EQ(s.total, 3u);
  EXPECT_GT(s.quantile(1.0), 0.0);
}

TEST(LatencyHistogramTest, EmptySnapshotIsZero) {
  LatencyHistogram h;
  const auto s = h.snapshot();
  EXPECT_EQ(s.total, 0u);
  EXPECT_EQ(s.quantile(0.99), 0.0);
  EXPECT_EQ(s.mean_s(), 0.0);
}

// ---- predict batching regression -------------------------------------------

TEST(PredictBatching, TailBatchesAreBitIdentical) {
  Model m = mlp(6, 16, 3, 11);
  const Tensor x = random_inputs(13, 6, 21);  // 13 % 4 != 0: tail batch
  const Tensor full = m.predict(x, 13);
  for (Index bs : {1, 4, 5, 8, 32}) {
    const Tensor out = m.predict(x, bs);
    ASSERT_EQ(out.numel(), full.numel());
    for (Index i = 0; i < out.numel(); ++i) {
      ASSERT_EQ(out[i], full[i]) << "batch_size=" << bs << " elem " << i;
    }
  }
}

TEST(PredictBatching, InferMatchesInferenceForwardBitwise) {
  Model m = mlp(6, 16, 3, 11);
  const Tensor x = random_inputs(9, 6, 22);
  const Tensor via_infer = m.infer(x);
  const Tensor via_forward = m.forward(x, /*training=*/false);
  ASSERT_EQ(via_infer.numel(), via_forward.numel());
  for (Index i = 0; i < via_infer.numel(); ++i) {
    ASSERT_EQ(via_infer[i], via_forward[i]);
  }
}

TEST(PredictBatching, EmptyInputYieldsEmptyOutput) {
  Model m = mlp(6, 16, 3, 11);
  const Tensor out = m.predict(Tensor({0, 6}));
  EXPECT_EQ(out.dim(0), 0);
}

// ---- dynamic batcher --------------------------------------------------------

BatchPolicy tiny_policy() {
  BatchPolicy p;
  p.max_batch = 4;
  p.max_wait_s = 1e-3;
  p.queue_capacity = 8;
  return p;
}

TEST(DynamicBatcherTest, ClosesOnCountWithoutWaiting) {
  DynamicBatcher b(tiny_policy(), 1);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(b.submit(req_with_id(static_cast<std::uint64_t>(i))));
  }
  const auto batch = b.next_batch();
  ASSERT_EQ(batch.size(), 4u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i]->request.id, i);  // arrival order preserved
  }
}

TEST(DynamicBatcherTest, ClosesShortBatchOnTimeout) {
  DynamicBatcher b(tiny_policy(), 1);
  auto f = b.submit(req_with_id(1));
  const auto batch = b.next_batch();  // blocks ~max_wait_s then yields 1 row
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0]->request.id, 1u);
}

TEST(DynamicBatcherTest, ShedsWhenQueueIsFull) {
  BatchPolicy p = tiny_policy();
  p.queue_capacity = 2;
  DynamicBatcher b(p, 1);
  auto f1 = b.submit(req_with_id(1));
  auto f2 = b.submit(req_with_id(2));
  auto f3 = b.submit(req_with_id(3));
  EXPECT_EQ(f3.get().outcome, Outcome::ShedQueueFull);  // resolves instantly
  const auto c = b.counters();
  EXPECT_EQ(c.submitted, 3u);
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.shed_queue_full, 1u);
}

TEST(DynamicBatcherTest, ShedsHopelessDeadlinesOnceCalibrated) {
  DynamicBatcher b(tiny_policy(), 1);
  // Uncalibrated: admission is permissive even for tight deadlines.
  Request tight;
  tight.id = 1;
  tight.deadline_s = 1e-6;
  auto f1 = b.submit(tight);
  EXPECT_EQ(b.counters().admitted, 1u);
  // After a 1 s/row measurement the predicted wait is ~4 s >> any sane
  // deadline, so the next tight request is shed on arrival...
  b.record_service(1, 1.0);
  tight.id = 2;
  auto f2 = b.submit(tight);
  EXPECT_EQ(f2.get().outcome, Outcome::ShedDeadline);
  // ...while an unbounded-deadline request is still admitted.
  auto f3 = b.submit(req_with_id(3));
  const auto c = b.counters();
  EXPECT_EQ(c.admitted, 2u);
  EXPECT_EQ(c.shed_deadline, 1u);
  EXPECT_GT(b.predicted_wait_s(), 0.0);
}

TEST(DynamicBatcherTest, DrainRejectsLateSubmitsAndFlushesQueue) {
  DynamicBatcher b(tiny_policy(), 1);
  auto f1 = b.submit(req_with_id(1));
  b.start_drain();
  auto f2 = b.submit(req_with_id(2));
  EXPECT_EQ(f2.get().outcome, Outcome::ShedShutdown);
  auto batch = b.next_batch();  // queued row still comes out
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(b.next_batch().empty());  // then the batcher reports drained
  EXPECT_TRUE(b.next_batch().empty());  // idempotently
}

// ---- engine -----------------------------------------------------------------

TEST(EngineTest, ResponsesAreBitIdenticalToSerialPredict) {
  const Model m = mlp(8, 32, 4, 3);
  const Tensor x = random_inputs(64, 8, 5);
  const Tensor expected = m.predict(x, 64);

  EngineOptions opt;
  opt.workers = 3;
  opt.batch.max_batch = 8;
  opt.batch.max_wait_s = 5e-4;
  Engine engine(m, opt);
  std::vector<std::future<Response>> futures;
  for (Index i = 0; i < x.dim(0); ++i) {
    futures.push_back(engine.submit(request_for_row(x, i)));
  }
  const Index out_f = expected.numel() / expected.dim(0);
  for (auto& f : futures) {
    Response r = f.get();
    ASSERT_EQ(r.outcome, Outcome::Completed);
    ASSERT_EQ(static_cast<Index>(r.output.size()), out_f);
    const Index row = static_cast<Index>(r.id);
    for (Index j = 0; j < out_f; ++j) {
      // Dynamic batches form differently from predict's fixed slices, but
      // every output row must still be bit-identical to the serial path.
      ASSERT_EQ(r.output[static_cast<std::size_t>(j)],
                expected[row * out_f + j])
          << "row " << row;
    }
    EXPECT_GE(r.batch_rows, 1);
    EXPECT_LE(r.batch_rows, opt.batch.max_batch);
    EXPECT_GE(r.latency_s, r.queue_wait_s);
  }
  engine.drain();
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.submitted, 64u);
  EXPECT_EQ(s.completed, 64u);
  EXPECT_EQ(s.shed_total(), 0u);
  EXPECT_EQ(s.latency.total, 64u);
  EXPECT_GE(s.batches, 64u / static_cast<std::uint64_t>(opt.batch.max_batch));
  EXPECT_GT(s.mean_batch_rows(), 0.0);
}

TEST(EngineTest, ConcurrentProducersKeepExactAccounting) {
  const Model m = mlp(8, 32, 4, 3);
  const Tensor x = random_inputs(32, 8, 9);
  const Tensor expected = m.predict(x, 32);
  const Index out_f = expected.numel() / expected.dim(0);

  EngineOptions opt;
  opt.workers = 4;
  opt.batch.max_batch = 8;
  opt.batch.max_wait_s = 5e-4;
  Engine engine(m, opt);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> mismatches{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      Pcg32 rng(static_cast<std::uint64_t>(t) + 100);
      for (int i = 0; i < kPerThread; ++i) {
        const Index row =
            static_cast<Index>(rng.next_double() * 31.999);
        Response r = engine.submit(request_for_row(x, row)).get();
        if (r.outcome != Outcome::Completed) continue;
        bool match = true;
        for (Index j = 0; j < out_f; ++j) {
          if (r.output[static_cast<std::size_t>(j)] !=
              expected[row * out_f + j]) {
            match = false;
          }
        }
        (match ? ok : mismatches).fetch_add(1);
      }
    });
  }
  for (auto& p : producers) p.join();
  engine.drain();
  const EngineStats s = engine.stats();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(s.submitted, s.completed + s.shed_total());
  EXPECT_EQ(s.completed, ok.load());
  EXPECT_EQ(s.latency.total, s.completed);
}

TEST(EngineTest, OverloadShedsInsteadOfQueueingUnboundedly) {
  const Model m = mlp(16, 128, 4, 3);
  const Tensor x = random_inputs(4, 16, 13);

  EngineOptions opt;
  opt.workers = 1;
  opt.batch.max_batch = 4;
  opt.batch.max_wait_s = 1e-4;
  opt.batch.queue_capacity = 4;  // tiny bound: flood must shed
  Engine engine(m, opt);
  std::vector<std::future<Response>> futures;
  constexpr int kFlood = 400;
  for (int i = 0; i < kFlood; ++i) {
    futures.push_back(engine.submit(request_for_row(x, i % 4)));
  }
  engine.drain();
  std::uint64_t completed = 0, shed = 0;
  for (auto& f : futures) {
    (f.get().outcome == Outcome::Completed ? completed : shed) += 1;
  }
  const EngineStats s = engine.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kFlood));
  EXPECT_EQ(s.submitted, s.completed + s.shed_total());
  EXPECT_EQ(s.completed, completed);
  EXPECT_EQ(s.shed_total(), shed);
  EXPECT_GT(s.shed_total(), 0u);  // the bounded queue did its job
  EXPECT_LE(s.peak_queue_depth, 4);
}

TEST(EngineTest, SubmitAfterDrainShedsShutdown) {
  const Model m = mlp(8, 16, 4, 3);
  Engine engine(m, {});
  engine.drain();
  engine.drain();  // idempotent
  Request r = request_for_row(random_inputs(1, 8, 1), 0);
  EXPECT_EQ(engine.submit(std::move(r)).get().outcome,
            Outcome::ShedShutdown);
  EXPECT_EQ(engine.stats().shed_shutdown, 1u);
}

TEST(EngineTest, RejectsMalformedInput) {
  const Model m = mlp(8, 16, 4, 3);
  Engine engine(m, {});
  Request r;
  r.input.assign(3, 0.0f);  // wrong sample size
  EXPECT_THROW(engine.submit(std::move(r)), Error);
}

TEST(LatencyHistogramTest, SnapshotConcurrentWithRecordIsNeverTorn) {
  // Satellite of the serving failure model: snapshot() racing wait-free
  // record() must never yield a torn count/sum pair.  Producers hammer two
  // known values; every concurrent snapshot must satisfy (a) total equals
  // the sum of its own bucket counts by construction, (b) the mean lies in
  // the envelope its counts imply, and (c) quantiles come from those same
  // counts — no mix of old counts and new sum.
  LatencyHistogram h;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 50000;
  const double lo = 1e-3, hi = 1e-2;
  std::atomic<bool> start{false};
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kPerProducer; ++i) {
        h.record((i + t) % 2 == 0 ? lo : hi);
      }
    });
  }
  start.store(true, std::memory_order_release);
  const double env_lo = LatencyHistogram::bucket_lower_edge(
      LatencyHistogram::bucket_of(lo));
  const double env_hi = LatencyHistogram::bucket_upper_edge(
      LatencyHistogram::bucket_of(hi));
  std::uint64_t last_total = 0;
  int snapshots = 0;
  while (h.total() < static_cast<std::uint64_t>(kProducers * kPerProducer)) {
    const auto s = h.snapshot();
    ++snapshots;
    std::uint64_t from_counts = 0;
    for (auto c : s.counts) from_counts += c;
    ASSERT_EQ(s.total, from_counts);
    ASSERT_GE(s.total, last_total);  // time never runs backwards
    last_total = s.total;
    if (s.total > 0) {
      ASSERT_GE(s.mean_s(), env_lo);
      ASSERT_LE(s.mean_s(), env_hi);
      // Quantiles derive from the same counts array: both recorded values
      // bound every quantile.
      ASSERT_GE(s.quantile(0.5), env_lo);
      ASSERT_LE(s.quantile(1.0), env_hi);
    }
  }
  for (auto& p : producers) p.join();
  EXPECT_GT(snapshots, 0);
  // Quiescent snapshot is exact to the last bit: full count, exact sum.
  const auto s = h.snapshot();
  EXPECT_TRUE(s.exact);
  EXPECT_EQ(s.total, static_cast<std::uint64_t>(kProducers * kPerProducer));
  const double true_sum =
      kProducers * (kPerProducer / 2) * (lo + hi);
  EXPECT_NEAR(s.sum_s, true_sum, 1e-6 * true_sum);
}

TEST(EngineTest, DrainConcurrentWithSubmitsResolvesEveryFutureExactlyOnce) {
  // Satellite of the serving failure model: the destructor's drain path
  // racing live submitters.  Every future must resolve exactly once —
  // Completed for requests that beat the drain, ShedShutdown for the rest —
  // with no lost promises (a .get() that never returns) and no
  // double-resolution (promise::set_value would throw).  Run under TSan in
  // CI.
  const Model m = mlp(8, 32, 4, 3);
  const Tensor x = random_inputs(8, 8, 21);
  EngineOptions opt;
  opt.workers = 2;
  opt.batch.max_batch = 4;
  opt.batch.max_wait_s = 1e-4;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::vector<std::future<Response>>> futures(kThreads);
  {
    Engine engine(m, opt);
    std::atomic<bool> start{false};
    std::vector<std::thread> producers;
    for (int t = 0; t < kThreads; ++t) {
      producers.emplace_back([&, t] {
        while (!start.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        for (int i = 0; i < kPerThread; ++i) {
          futures[static_cast<std::size_t>(t)].push_back(
              engine.submit(request_for_row(x, i % 8)));
        }
      });
    }
    start.store(true, std::memory_order_release);
    // Drain mid-flood: half the submitters are typically still running.
    engine.drain();
    for (auto& p : producers) p.join();
    // Submits that arrived after the drain flag must have shed, not queued.
    const EngineStats s = engine.stats();
    EXPECT_EQ(s.submitted,
              static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(s.submitted, s.completed + s.shed_total());
    // Engine destructor runs here with all submitters done — the
    // destructor-drain path is idempotent over the explicit drain above.
  }
  std::uint64_t resolved = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      ASSERT_TRUE(f.valid());
      const Response r = f.get();  // throws if the promise was never set
      ASSERT_TRUE(r.outcome == Outcome::Completed ||
                  r.outcome == Outcome::ShedShutdown ||
                  r.outcome == Outcome::ShedQueueFull ||
                  r.outcome == Outcome::ShedDeadline);
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, static_cast<std::uint64_t>(kThreads * kPerThread));
}

// ---- hpcsim serving estimator ----------------------------------------------

TEST(EstimateServing, MeasuredOverridePinsCapacityExactly) {
  hpcsim::ServingPlan plan;
  plan.workers = 2;
  plan.max_batch = 32;
  plan.measured_batch_service_s = 0.01;
  hpcsim::TrainingWorkload w;  // unused with the override
  const auto e = hpcsim::estimate_serving(hpcsim::summit_node(), w, plan,
                                          3200.0);
  EXPECT_DOUBLE_EQ(e.capacity_rps, 2.0 * 32.0 / 0.01);  // 6400
  EXPECT_DOUBLE_EQ(e.utilization, 0.5);
  EXPECT_EQ(e.shed_fraction, 0.0);
  EXPECT_DOUBLE_EQ(e.throughput_rps, 3200.0);
  EXPECT_GT(e.mean_latency_s, e.batch_service_s);
}

TEST(EstimateServing, ThroughputKneesAtCapacity) {
  hpcsim::ServingPlan plan;
  plan.workers = 2;
  plan.max_batch = 32;
  plan.measured_batch_service_s = 0.01;
  hpcsim::TrainingWorkload w;
  const auto node = hpcsim::summit_node();
  double prev_latency = 0.0;
  for (double frac : {0.25, 0.5, 0.9, 1.5, 3.0}) {
    const auto e = hpcsim::estimate_serving(node, w, plan, 6400.0 * frac);
    // Goodput tracks offered load below capacity and clamps above it; the
    // surplus turns into shed fraction, and latency grows monotonically
    // until the bounded queue caps it.
    EXPECT_DOUBLE_EQ(e.throughput_rps, std::min(6400.0 * frac, 6400.0));
    if (frac > 1.0) {
      EXPECT_NEAR(e.shed_fraction, 1.0 - 1.0 / frac, 1e-12);
    } else {
      EXPECT_EQ(e.shed_fraction, 0.0);
    }
    EXPECT_GE(e.mean_latency_s, prev_latency);
    prev_latency = e.mean_latency_s;
  }
}

TEST(EstimateServing, RooflinePathGivesFiniteCapacity) {
  hpcsim::TrainingWorkload w;
  w.flops_per_sample = 2e6;
  w.parameters = 1e6;
  w.bytes_per_sample = 240.0;
  w.activation_bytes_per_sample = 4096.0;
  hpcsim::ServingPlan plan;  // no measured override: roofline path
  const auto e =
      hpcsim::estimate_serving(hpcsim::summit_node(), w, plan, 1000.0);
  EXPECT_GT(e.batch_service_s, 0.0);
  EXPECT_GT(e.capacity_rps, 0.0);
  EXPECT_TRUE(std::isfinite(e.mean_latency_s));
}

// ---- continuous-batching estimator ------------------------------------------

TEST(EstimateServingContinuous, SharesCapacityWithCoalescingEstimator) {
  // Continuous batching changes *when* rows join a batch, not how fast a
  // full batch computes: at the same plan both estimators must agree on
  // service time, capacity, goodput, and shed fraction exactly.
  hpcsim::ServingPlan plan;
  plan.workers = 2;
  plan.max_batch = 32;
  plan.measured_batch_service_s = 0.01;
  hpcsim::TrainingWorkload w;
  const auto node = hpcsim::summit_node();
  for (double offered : {100.0, 3200.0, 6400.0, 12800.0}) {
    const auto coal = hpcsim::estimate_serving(node, w, plan, offered);
    const auto cont =
        hpcsim::estimate_serving_continuous(node, w, plan, offered);
    EXPECT_DOUBLE_EQ(cont.batch_service_s, coal.batch_service_s);
    EXPECT_DOUBLE_EQ(cont.capacity_rps, coal.capacity_rps);
    EXPECT_DOUBLE_EQ(cont.throughput_rps, coal.throughput_rps);
    EXPECT_DOUBLE_EQ(cont.shed_fraction, coal.shed_fraction);
    EXPECT_DOUBLE_EQ(cont.row_service_s, coal.batch_service_s / 32.0);
  }
}

TEST(EstimateServingContinuous, NoFillWaitTermAtLowLoad) {
  // The defining cut: the coalescing estimator's low-load latency is
  // dominated by the fill window (batch_timeout_s), while the continuous
  // estimator has no fill-wait term at all — its latency must be
  // independent of the timeout and far below the coalescing latency when
  // the window is wide.
  hpcsim::ServingPlan plan;
  plan.workers = 2;
  plan.max_batch = 32;
  plan.measured_batch_service_s = 0.01;
  plan.batch_timeout_s = 0.2;  // wide-open window
  hpcsim::TrainingWorkload w;
  const auto node = hpcsim::summit_node();
  // Deep below saturation, sparse enough that the fill window expires on
  // the clock ((b-1)/(2*fill) > timeout), i.e. the timeout is what binds.
  const double offered = 0.005 * 6400.0;

  const auto coal = hpcsim::estimate_serving(node, w, plan, offered);
  const auto cont = hpcsim::estimate_serving_continuous(node, w, plan, offered);
  EXPECT_GT(coal.batch_fill_wait_s, 0.0);
  EXPECT_LT(cont.mean_latency_s, coal.mean_latency_s);

  hpcsim::ServingPlan plan2 = plan;
  plan2.batch_timeout_s = 0.4;  // doubling the window ...
  const auto coal2 = hpcsim::estimate_serving(node, w, plan2, offered);
  const auto cont2 =
      hpcsim::estimate_serving_continuous(node, w, plan2, offered);
  EXPECT_GT(coal2.mean_latency_s, coal.mean_latency_s);  // ... hurts coalescing
  EXPECT_DOUBLE_EQ(cont2.mean_latency_s, cont.mean_latency_s);  // ... not this
}

TEST(EstimateServingContinuous, LatencyGrowsMonotonicallyAndSaturates) {
  hpcsim::ServingPlan plan;
  plan.workers = 2;
  plan.max_batch = 32;
  plan.queue_capacity = 128;
  plan.measured_batch_service_s = 0.01;
  hpcsim::TrainingWorkload w;
  const auto node = hpcsim::summit_node();
  double prev_latency = 0.0;
  for (double frac : {0.1, 0.25, 0.5, 0.9, 1.5, 3.0}) {
    const auto e =
        hpcsim::estimate_serving_continuous(node, w, plan, 6400.0 * frac);
    EXPECT_GE(e.mean_latency_s, prev_latency);
    prev_latency = e.mean_latency_s;
    EXPECT_GE(e.mean_batch_rows, 1.0);
    EXPECT_LE(e.mean_batch_rows, 32.0);
    // Queue wait is bounded by the full bounded queue draining row-by-row
    // across the pool.
    EXPECT_LE(e.queue_wait_s,
              128.0 * e.row_service_s / 2.0 + 1e-12);
    if (frac >= 1.5) {
      EXPECT_NEAR(e.shed_fraction, 1.0 - 1.0 / frac, 1e-12);
      EXPECT_DOUBLE_EQ(e.mean_batch_rows, 32.0);  // saturated slots run full
    }
  }
}

}  // namespace
}  // namespace candle

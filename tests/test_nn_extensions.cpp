// Tests for the extended nn feature set: normalization layers (gradient
// checks + statistics), new activations, LR schedules, weight decay,
// gradient clipping, early stopping, and weight serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "nn/metrics.hpp"
#include "nn/model.hpp"
#include "nn/norm.hpp"
#include "nn/schedule.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace candle {
namespace {

// ---- BatchNorm ------------------------------------------------------------------

TEST(BatchNorm, NormalizesTrainingBatch) {
  auto bn = make_batchnorm();
  Pcg32 rng(1);
  bn->build({5}, rng);
  Tensor x = Tensor::randn({64, 5}, rng, 3.0f, 2.0f);
  Tensor y = bn->forward(x, /*training=*/true);
  for (Index f = 0; f < 5; ++f) {
    double mean = 0, sq = 0;
    for (Index i = 0; i < 64; ++i) {
      mean += y.at(i, f);
      sq += static_cast<double>(y.at(i, f)) * y.at(i, f);
    }
    mean /= 64;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / 64 - mean * mean, 1.0, 1e-2);
  }
}

TEST(BatchNorm, RunningStatsConvergeAndDriveInference) {
  auto bn = make_batchnorm(0.5f);
  Pcg32 rng(2);
  bn->build({3}, rng);
  for (int it = 0; it < 40; ++it) {
    Tensor x = Tensor::randn({128, 3}, rng, 4.0f, 3.0f);
    bn->forward(x, true);
  }
  auto* layer = dynamic_cast<BatchNorm*>(bn.get());
  ASSERT_NE(layer, nullptr);
  for (Index f = 0; f < 3; ++f) {
    EXPECT_NEAR(layer->running_mean()[f], 4.0f, 0.5f);
    EXPECT_NEAR(layer->running_var()[f], 9.0f, 1.5f);
  }
  // Inference on in-distribution data normalizes approximately.
  Tensor x = Tensor::randn({256, 3}, rng, 4.0f, 3.0f);
  Tensor y = bn->forward(x, false);
  EXPECT_NEAR(y.mean(), 0.0f, 0.1f);
}

TEST(BatchNorm, GradCheck) {
  auto bn = make_batchnorm();
  Pcg32 rng(3);
  bn->build({4}, rng);
  Tensor x = Tensor::randn({8, 4}, rng);
  Tensor mask = Tensor::randn({8, 4}, rng);
  bn->forward(x, true);
  const Tensor dx = bn->backward(mask);
  // Central differences through the full training forward.
  const float eps = 1e-2f;
  auto f = [&](Tensor& xt) {
    const Tensor y = bn->forward(xt, true);
    double s = 0;
    for (Index i = 0; i < y.numel(); ++i) {
      s += static_cast<double>(y[i]) * mask[i];
    }
    return s;
  };
  for (Index i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const double fp = f(x);
    x[i] = orig - eps;
    const double fm = f(x);
    x[i] = orig;
    EXPECT_NEAR(dx[i], (fp - fm) / (2.0 * static_cast<double>(eps)), 3e-2)
        << i;
  }
}

TEST(BatchNorm, RejectsTinyTrainingBatch) {
  auto bn = make_batchnorm();
  Pcg32 rng(4);
  bn->build({2}, rng);
  EXPECT_THROW(bn->forward(Tensor({1, 2}), true), Error);
  // Inference on a single sample is fine.
  bn->forward(Tensor({4, 2}), true);
  EXPECT_NO_THROW(bn->forward(Tensor({1, 2}), false));
}

// ---- LayerNorm ------------------------------------------------------------------

TEST(LayerNorm, NormalizesEachSample) {
  auto ln = make_layernorm();
  Pcg32 rng(5);
  ln->build({16}, rng);
  Tensor x = Tensor::randn({4, 16}, rng, -2.0f, 5.0f);
  Tensor y = ln->forward(x, true);
  for (Index i = 0; i < 4; ++i) {
    double mean = 0, sq = 0;
    for (Index f = 0; f < 16; ++f) {
      mean += y.at(i, f);
      sq += static_cast<double>(y.at(i, f)) * y.at(i, f);
    }
    mean /= 16;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(sq / 16 - mean * mean, 1.0, 1e-2);
  }
}

TEST(LayerNorm, IndependentOfBatchComposition) {
  // The same sample normalizes identically regardless of its batch — the
  // property BatchNorm loses under strong scaling.
  auto ln = make_layernorm();
  Pcg32 rng(6);
  ln->build({8}, rng);
  Tensor sample = Tensor::randn({1, 8}, rng);
  const Tensor alone = ln->forward(sample, true);
  Tensor batch({4, 8});
  for (Index f = 0; f < 8; ++f) batch.at(0, f) = sample.at(0, f);
  const Tensor together = ln->forward(batch, true);
  for (Index f = 0; f < 8; ++f) {
    EXPECT_FLOAT_EQ(alone.at(0, f), together.at(0, f));
  }
}

TEST(LayerNorm, GradCheck) {
  auto ln = make_layernorm();
  Pcg32 rng(7);
  ln->build({6}, rng);
  Tensor x = Tensor::randn({3, 6}, rng);
  Tensor mask = Tensor::randn({3, 6}, rng);
  ln->forward(x, true);
  const Tensor dx = ln->backward(mask);
  const float eps = 1e-2f;
  for (Index i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    x[i] = orig + eps;
    const Tensor yp = ln->forward(x, true);
    double fp = 0;
    for (Index j = 0; j < yp.numel(); ++j) {
      fp += static_cast<double>(yp[j]) * mask[j];
    }
    x[i] = orig - eps;
    const Tensor ym = ln->forward(x, true);
    double fm = 0;
    for (Index j = 0; j < ym.numel(); ++j) {
      fm += static_cast<double>(ym[j]) * mask[j];
    }
    x[i] = orig;
    EXPECT_NEAR(dx[i], (fp - fm) / (2.0 * static_cast<double>(eps)), 3e-2);
  }
}

TEST(Norms, TrainableInsideModel) {
  // A batchnormed MLP should fit the XOR-style blobs fine.
  Pcg32 rng(8);
  Tensor x = Tensor::randn({128, 4}, rng);
  Tensor y({128});
  for (Index i = 0; i < 128; ++i) {
    y[i] = (x.at(i, 0) * x.at(i, 1) > 0) ? 1.0f : 0.0f;
  }
  Model m;
  m.add(make_dense(16)).add(make_batchnorm()).add(make_relu());
  m.add(make_dense(2));
  m.build({4}, 9);
  SoftmaxCrossEntropy xent;
  Adam opt(0.01f);
  float loss = 0;
  for (int s = 0; s < 150; ++s) loss = m.train_batch(x, y, xent, opt);
  EXPECT_LT(loss, 0.3f);
  EXPECT_GT(accuracy(m.predict(x), y), 0.85);
}

// ---- new activations ---------------------------------------------------------------

struct ActCase {
  Activation fn;
  float x, y;  // expected forward value
};

class NewActivations : public ::testing::TestWithParam<ActCase> {};

TEST_P(NewActivations, ForwardValues) {
  const auto [fn, xin, expected] = GetParam();
  auto layer = make_activation(fn);
  Pcg32 rng(10);
  layer->build({1}, rng);
  Tensor x({1, 1}, {xin});
  EXPECT_NEAR(layer->forward(x, false)[0], expected, 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(
    Values, NewActivations,
    ::testing::Values(ActCase{Activation::LeakyReLU, 2.0f, 2.0f},
                      ActCase{Activation::LeakyReLU, -2.0f, -0.02f},
                      ActCase{Activation::Elu, 1.5f, 1.5f},
                      ActCase{Activation::Elu, -1e9f, -1.0f},
                      ActCase{Activation::Softplus, 0.0f, 0.6931472f},
                      ActCase{Activation::Softplus, 100.0f, 100.0f}));

class NewActivationGrad : public ::testing::TestWithParam<Activation> {};

TEST_P(NewActivationGrad, MatchesFiniteDifference) {
  auto layer = make_activation(GetParam());
  Pcg32 rng(11);
  layer->build({8}, rng);
  Tensor x = Tensor::randn({4, 8}, rng);
  // Keep clear of the LeakyReLU kink.
  for (float& v : x.flat()) {
    if (std::abs(v) < 0.05f) v += 0.1f;
  }
  Tensor mask = Tensor::randn({4, 8}, rng);
  layer->forward(x, false);
  const Tensor dx = layer->backward(mask);
  const float eps = 1e-3f;
  for (Index i = 0; i < x.numel(); ++i) {
    const float orig = x[i];
    auto f = [&] {
      const Tensor y = layer->forward(x, false);
      double s = 0;
      for (Index j = 0; j < y.numel(); ++j) {
        s += static_cast<double>(y[j]) * mask[j];
      }
      return s;
    };
    x[i] = orig + eps;
    const double fp = f();
    x[i] = orig - eps;
    const double fm = f();
    x[i] = orig;
    EXPECT_NEAR(dx[i], (fp - fm) / (2.0 * static_cast<double>(eps)), 1e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(Fns, NewActivationGrad,
                         ::testing::Values(Activation::LeakyReLU,
                                           Activation::Elu,
                                           Activation::Softplus),
                         [](const auto& pinfo) {
                           return activation_name(pinfo.param);
                         });

// ---- schedules ------------------------------------------------------------------

TEST(Schedules, StepDecay) {
  StepDecay s(10, 0.5f);
  EXPECT_FLOAT_EQ(s.lr(0, 1.0f), 1.0f);
  EXPECT_FLOAT_EQ(s.lr(9, 1.0f), 1.0f);
  EXPECT_FLOAT_EQ(s.lr(10, 1.0f), 0.5f);
  EXPECT_FLOAT_EQ(s.lr(25, 1.0f), 0.25f);
  EXPECT_THROW(StepDecay(0, 0.5f), Error);
  EXPECT_THROW(StepDecay(5, 1.5f), Error);
}

TEST(Schedules, ExponentialDecay) {
  ExponentialDecay e(0.9f);
  EXPECT_FLOAT_EQ(e.lr(0, 2.0f), 2.0f);
  EXPECT_NEAR(e.lr(10, 2.0f), 2.0f * std::pow(0.9f, 10.0f), 1e-5f);
  EXPECT_THROW(ExponentialDecay(0.0f), Error);
}

TEST(Schedules, WarmupCosineShape) {
  WarmupCosine w(5, 50, 0.1f);
  // Linear ramp over warmup.
  EXPECT_FLOAT_EQ(w.lr(0, 1.0f), 0.2f);
  EXPECT_FLOAT_EQ(w.lr(4, 1.0f), 1.0f);
  // Peak at end of warmup, monotone decay after.
  float prev = w.lr(5, 1.0f);
  for (Index e = 6; e < 50; ++e) {
    const float cur = w.lr(e, 1.0f);
    EXPECT_LE(cur, prev + 1e-6f);
    prev = cur;
  }
  // Lands at the floor.
  EXPECT_NEAR(w.lr(49, 1.0f), 0.1f, 0.02f);
  EXPECT_THROW(WarmupCosine(10, 5), Error);
}

TEST(Schedules, DriveFitAndRestoreBaseLr) {
  Pcg32 rng(12);
  Dataset d{Tensor::randn({64, 4}, rng), Tensor::randn({64, 1}, rng)};
  Model m;
  m.add(make_dense(4)).add(make_dense(1));
  m.build({4}, 13);
  MeanSquaredError mse;
  Sgd opt(0.1f);
  auto sched = make_step_decay(2, 0.1f);
  FitOptions fo;
  fo.epochs = 5;
  fo.batch_size = 16;
  fo.lr_schedule = sched.get();
  fit(m, d, nullptr, mse, opt, fo);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.1f);  // restored
}

// ---- weight decay + clipping ---------------------------------------------------------

TEST(Optimizer, WeightDecayShrinksWeights) {
  Tensor w({1}, {1.0f});
  Tensor g({1}, {0.0f});
  Sgd sgd(0.1f);
  sgd.set_weight_decay(0.5f);
  std::vector<Tensor*> ps{&w}, gs{&g};
  sgd.step(ps, gs);
  // g becomes 0.5*1.0; w -= 0.1*0.5.
  EXPECT_FLOAT_EQ(w[0], 0.95f);
  EXPECT_THROW(sgd.set_weight_decay(-1.0f), Error);
}

TEST(Optimizer, GradientClipBoundsGlobalNorm) {
  Tensor w1({2}, {0.0f, 0.0f}), w2({2}, {0.0f, 0.0f});
  Tensor g1({2}, {3.0f, 0.0f}), g2({2}, {0.0f, 4.0f});  // global norm 5
  Sgd sgd(1.0f);
  sgd.set_gradient_clip(1.0f);
  std::vector<Tensor*> ps{&w1, &w2}, gs{&g1, &g2};
  sgd.step(ps, gs);
  // Clipped to norm 1: g = (0.6, 0, 0, 0.8); w = -g.
  EXPECT_NEAR(w1[0], -0.6f, 1e-6f);
  EXPECT_NEAR(w2[1], -0.8f, 1e-6f);
  // Under the threshold nothing changes.
  Tensor w3({1}, {0.0f});
  Tensor g3({1}, {0.5f});
  Sgd sgd2(1.0f);
  sgd2.set_gradient_clip(1.0f);
  std::vector<Tensor*> ps3{&w3}, gs3{&g3};
  sgd2.step(ps3, gs3);
  EXPECT_FLOAT_EQ(w3[0], -0.5f);
}

TEST(Optimizer, WeightDecayImprovesNoisyGeneralization) {
  // Pure-noise targets: decayed weights should end smaller.
  Pcg32 rng(14);
  Dataset d{Tensor::randn({64, 8}, rng), Tensor::randn({64, 1}, rng)};
  auto make = [&] {
    Model m;
    m.add(make_dense(16)).add(make_relu()).add(make_dense(1));
    m.build({8}, 15);
    return m;
  };
  Model plain = make(), decayed = make();
  MeanSquaredError mse;
  Adam o1(0.01f), o2(0.01f);
  o2.set_weight_decay(0.05f);
  for (int s = 0; s < 100; ++s) {
    plain.train_batch(d.x, d.y, mse, o1);
    decayed.train_batch(d.x, d.y, mse, o2);
  }
  std::vector<float> wp(static_cast<std::size_t>(plain.num_params()));
  std::vector<float> wd(wp.size());
  plain.copy_weights_to(wp);
  decayed.copy_weights_to(wd);
  double np = 0, nd = 0;
  for (std::size_t i = 0; i < wp.size(); ++i) {
    np += static_cast<double>(wp[i]) * wp[i];
    nd += static_cast<double>(wd[i]) * wd[i];
  }
  EXPECT_LT(nd, np);
}

// ---- early stopping ------------------------------------------------------------------

TEST(EarlyStopping, HaltsWhenValidationStalls) {
  Pcg32 rng(16);
  // Targets are pure noise: validation loss cannot keep improving.
  Dataset train{Tensor::randn({64, 4}, rng), Tensor::randn({64, 1}, rng)};
  Dataset val{Tensor::randn({32, 4}, rng), Tensor::randn({32, 1}, rng)};
  Model m;
  m.add(make_dense(32)).add(make_relu()).add(make_dense(1));
  m.build({4}, 17);
  MeanSquaredError mse;
  Adam opt(0.01f);
  FitOptions fo;
  fo.epochs = 200;
  fo.batch_size = 16;
  fo.early_stop_patience = 3;
  const FitHistory h = fit(m, train, &val, mse, opt, fo);
  EXPECT_LT(h.train_loss.size(), 200u) << "early stopping never fired";
}

// ---- serialization ------------------------------------------------------------------

TEST(Serialize, RoundTripsWeights) {
  const std::string path = "/tmp/candle_test_ckpt.bin";
  Pcg32 rng(18);
  Model m;
  m.add(make_dense(8)).add(make_batchnorm()).add(make_relu());
  m.add(make_dense(3));
  m.build({5}, 19);
  Tensor x = Tensor::randn({4, 5}, rng);
  const Tensor before = m.forward(x);
  save_weights(m, path);

  Model m2;
  m2.add(make_dense(8)).add(make_batchnorm()).add(make_relu());
  m2.add(make_dense(3));
  m2.build({5}, 999);  // different init
  load_weights(m2, path);
  EXPECT_EQ(max_abs_diff(m2.forward(x), before), 0.0f);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  const std::string path = "/tmp/candle_test_ckpt2.bin";
  Model m;
  m.add(make_dense(8)).add(make_dense(3));
  m.build({5}, 20);
  save_weights(m, path);

  Model wrong;
  wrong.add(make_dense(9)).add(make_dense(3));
  wrong.build({5}, 21);
  EXPECT_THROW(load_weights(wrong, path), Error);

  Model wrong_count;
  wrong_count.add(make_dense(8));
  wrong_count.build({5}, 22);
  EXPECT_THROW(load_weights(wrong_count, path), Error);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsGarbageFiles) {
  const std::string path = "/tmp/candle_test_ckpt3.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a checkpoint", f);
    std::fclose(f);
  }
  Model m;
  m.add(make_dense(2));
  m.build({2}, 23);
  EXPECT_THROW(load_weights(m, path), Error);
  EXPECT_THROW(load_weights(m, "/nonexistent/path.bin"), Error);
  Model unbuilt;
  unbuilt.add(make_dense(2));
  EXPECT_THROW(save_weights(unbuilt, path), Error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace candle

// Deterministic straggler stress harness: backup workers and bounded
// staleness in the resilient trainer, the quorum all-reduce they commit
// through, the heavy-tailed schedule generator that drives them, and the
// analytic order-statistic closed forms pinned against the Monte-Carlo
// simulator.  Everything here replays bit-identically from a fixed seed —
// participant sets derive from the schedule, never from thread timing.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <limits>
#include <thread>

#include "hpcsim/resilience.hpp"
#include "parallel/collectives.hpp"
#include "parallel/param_server.hpp"
#include "parallel/resilient.hpp"
#include "runtime/fault.hpp"
#include "runtime/rng.hpp"

namespace candle::parallel {
namespace {

using runtime::FaultKind;
using runtime::FaultSchedule;

void run_ranks(Index p, const std::function<void(Index)>& body) {
  std::vector<std::thread> threads;
  for (Index r = 0; r < p; ++r) threads.emplace_back([&, r] { body(r); });
  for (auto& t : threads) t.join();
}

// ---- staleness accounting ---------------------------------------------------

TEST(StalenessMeter, PinsHandComputedSchedule) {
  StalenessMeter m;
  for (const Index s : {0, 1, 2, 3}) m.record(s);
  EXPECT_EQ(m.updates(), 4);
  EXPECT_EQ(m.max_staleness(), 3);
  EXPECT_DOUBLE_EQ(m.mean(), 1.5);
}

TEST(StalenessMeter, ZeroRecordsMeanIsZeroNotNan) {
  // The division guard: a run that applied no stale updates must report a
  // mean of exactly 0.0, not NaN.
  const StalenessMeter m;
  EXPECT_EQ(m.updates(), 0);
  EXPECT_EQ(m.max_staleness(), 0);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_FALSE(std::isnan(m.mean()));
}

Dataset blob_dataset(Index n, std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({n, 6}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < 6; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  return d;
}

ModelFactory blob_model_factory(std::uint64_t seed) {
  return [seed] {
    Model m;
    m.add(make_dense(12)).add(make_relu()).add(make_dense(2));
    m.build({6}, seed);
    return m;
  };
}

std::vector<float> weights_of(const Model& m) {
  std::vector<float> w(static_cast<std::size_t>(m.num_params()));
  m.copy_weights_to(w);
  return w;
}

float eval_loss(Model& m, const Dataset& d) {
  SoftmaxCrossEntropy xent;
  const Tensor pred = m.forward(d.x, /*training=*/false);
  return xent.value(pred, d.y);
}

TEST(StalenessMeter, SingleWorkerParamServerSeesZeroStaleness) {
  // One worker can never run behind itself: every pull-to-push window spans
  // zero other commits, so the meter must report exactly zero.
  const Dataset d = blob_dataset(128, 17);
  ParamServerOptions o;
  o.workers = 1;
  o.epochs = 2;
  o.batch_size = 16;
  o.seed = 18;
  const ParamServerResult res =
      train_param_server(blob_model_factory(19), [] { return make_sgd(0.05f); },
                         d, SoftmaxCrossEntropy(), o);
  EXPECT_GT(res.steps, 0);
  EXPECT_DOUBLE_EQ(res.mean_staleness, 0.0);
  EXPECT_EQ(res.max_staleness, 0);
}

// ---- quorum all-reduce ------------------------------------------------------

TEST(QuorumAllReduce, FullParticipationMatchesFlatSum) {
  const Index p = 4;
  ShmCommunicator comm(p);
  std::vector<std::vector<float>> bufs(
      static_cast<std::size_t>(p), std::vector<float>(8));
  for (Index r = 0; r < p; ++r) {
    for (auto& v : bufs[static_cast<std::size_t>(r)]) {
      v = static_cast<float>(r + 1);
    }
  }
  run_ranks(p, [&](Index r) {
    const Index n = comm.allreduce_quorum(
        r, bufs[static_cast<std::size_t>(r)], /*contributing=*/true);
    EXPECT_EQ(n, p);
  });
  for (const auto& buf : bufs) {
    for (float v : buf) EXPECT_EQ(v, 10.0f);  // 1 + 2 + 3 + 4
  }
}

TEST(QuorumAllReduce, PartialQuorumBroadcastsToNonContributors) {
  // Ranks 0 and 2 contribute; 1 and 3 are stalled but still receive the
  // committed sum — that is what keeps a mitigated fleet bit-synchronized.
  const Index p = 4;
  ShmCommunicator comm(p);
  std::vector<std::vector<float>> bufs(
      static_cast<std::size_t>(p), std::vector<float>(16));
  for (Index r = 0; r < p; ++r) {
    for (auto& v : bufs[static_cast<std::size_t>(r)]) {
      v = static_cast<float>(10 * (r + 1));
    }
  }
  run_ranks(p, [&](Index r) {
    const Index n = comm.allreduce_quorum(
        r, bufs[static_cast<std::size_t>(r)], r == 0 || r == 2);
    EXPECT_EQ(n, 2);
  });
  for (const auto& buf : bufs) {
    for (float v : buf) EXPECT_EQ(v, 40.0f);  // 10 + 30, on every rank
  }
}

TEST(QuorumAllReduce, NonContributingRootStillHostsTheSum) {
  // The lowest live rank is the deterministic reduction root even when it is
  // itself stalled: its buffer must end up holding the contributors' sum.
  const Index p = 3;
  ShmCommunicator comm(p);
  std::vector<std::vector<float>> bufs(
      static_cast<std::size_t>(p), std::vector<float>(4));
  for (Index r = 0; r < p; ++r) {
    for (auto& v : bufs[static_cast<std::size_t>(r)]) {
      v = static_cast<float>(r + 1);
    }
  }
  run_ranks(p, [&](Index r) {
    comm.allreduce_quorum(r, bufs[static_cast<std::size_t>(r)], r != 0);
  });
  for (const auto& buf : bufs) {
    for (float v : buf) EXPECT_EQ(v, 5.0f);  // 2 + 3
  }
}

TEST(QuorumAllReduce, EmptyQuorumThrowsOnEveryRank) {
  const Index p = 3;
  ShmCommunicator comm(p);
  std::atomic<int> errors{0};
  run_ranks(p, [&](Index r) {
    std::vector<float> buf(4, 1.0f);
    try {
      comm.allreduce_quorum(r, buf, /*contributing=*/false);
    } catch (const Error&) {
      ++errors;
    }
  });
  EXPECT_EQ(errors.load(), 3);
}

// ---- heavy-tailed straggler schedules ---------------------------------------

TEST(ParetoSchedule, SameSeedReplaysIdenticalEventList) {
  const auto a =
      runtime::pareto_straggler_schedule(31, 50, 8, 6, 2.5, 0.1, 0.4);
  const auto b =
      runtime::pareto_straggler_schedule(31, 50, 8, 6, 2.5, 0.1, 0.4);
  ASSERT_EQ(a.events.size(), 6u);
  ASSERT_EQ(b.events.size(), 6u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, FaultKind::Straggler);
    EXPECT_EQ(a.events[i].step, b.events[i].step);
    EXPECT_EQ(a.events[i].rank, b.events[i].rank);
    EXPECT_DOUBLE_EQ(a.events[i].delay_s, b.events[i].delay_s);
  }
  // A different seed produces a different draw (overwhelmingly likely).
  const auto c =
      runtime::pareto_straggler_schedule(32, 50, 8, 6, 2.5, 0.1, 0.4);
  bool any_diff = false;
  for (std::size_t i = 0; i < c.events.size(); ++i) {
    any_diff = any_diff || c.events[i].step != a.events[i].step ||
               c.events[i].rank != a.events[i].rank ||
               c.events[i].delay_s != a.events[i].delay_s;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ParetoSchedule, DelaysRespectTailBoundsAndCellsAreUnique) {
  const double min_d = 0.05, max_d = 0.3;
  const auto sched =
      runtime::pareto_straggler_schedule(7, 40, 4, 20, 2.0, min_d, max_d);
  ASSERT_EQ(sched.events.size(), 20u);
  std::vector<std::pair<Index, Index>> cells;
  for (const auto& ev : sched.events) {
    EXPECT_GE(ev.step, 1);
    EXPECT_LT(ev.step, 40);
    EXPECT_GE(ev.rank, 0);
    EXPECT_LT(ev.rank, 4);
    EXPECT_GE(ev.delay_s, min_d);   // Pareto scale = smallest stall
    EXPECT_LE(ev.delay_s, max_d);   // truncated tail
    cells.emplace_back(ev.step, ev.rank);
  }
  std::sort(cells.begin(), cells.end());
  EXPECT_EQ(std::adjacent_find(cells.begin(), cells.end()), cells.end())
      << "duplicate (step, rank) cell";
  // Untruncated: the heavy tail must actually produce delays past several
  // multiples of the minimum (that is the point of a Pareto model).
  const auto open =
      runtime::pareto_straggler_schedule(7, 400, 8, 200, 1.5, 0.05);
  double worst = 0.0;
  for (const auto& ev : open.events) worst = std::max(worst, ev.delay_s);
  EXPECT_GT(worst, 0.25);
}

// ---- analytic model vs Monte-Carlo ------------------------------------------

TEST(StragglerModel, SimulationPinsClosedFormsAcrossGrid) {
  // The order-statistic closed forms (binomial mixture over the straggler
  // count, Pareto order-statistic means via lgamma) against the seeded
  // discrete simulator, across tail indices and all three disciplines.
  const double step_s = 1.0;
  const Index ranks = 8, steps = 200, trials = 600;
  for (const double alpha : {2.2, 3.0}) {
    hpcsim::StragglerModel m;
    m.prob = 0.05;
    m.pareto_alpha = alpha;
    m.min_delay_s = 0.5;
    for (const auto mode : {hpcsim::StragglerMitigation::Synchronous,
                            hpcsim::StragglerMitigation::BackupWorkers,
                            hpcsim::StragglerMitigation::BoundedStaleness}) {
      const double analytic = hpcsim::expected_straggler_runtime_s(
          m, mode, step_s, ranks, /*backup_workers=*/2,
          /*staleness_bound=*/2, steps);
      const double sim = hpcsim::simulate_straggler_runtime_s(
          m, mode, step_s, ranks, 2, 2, steps, trials, 99);
      EXPECT_NEAR(sim / analytic, 1.0, 0.05)
          << hpcsim::straggler_mitigation_name(mode) << " alpha=" << alpha;
    }
  }
}

TEST(StragglerModel, MitigationNeverCostsMoreThanSynchronous) {
  hpcsim::StragglerModel m;
  m.prob = 0.08;
  m.pareto_alpha = 2.5;
  m.min_delay_s = 2.0;
  const double step_s = 1.0;
  for (const Index ranks : {4, 8, 64}) {
    const double sync = hpcsim::expected_straggler_step_s(
        m, hpcsim::StragglerMitigation::Synchronous, step_s, ranks, 1, 1);
    double prev_backup = sync;
    for (const Index k : {1, 2, 3}) {
      const double backup = hpcsim::expected_straggler_step_s(
          m, hpcsim::StragglerMitigation::BackupWorkers, step_s, ranks, k, 1);
      EXPECT_LE(backup, prev_backup + 1e-12) << "ranks=" << ranks << " k=" << k;
      prev_backup = backup;  // more backups hide more of the tail
    }
    double prev_stale = std::numeric_limits<double>::infinity();
    for (const Index s : {1, 2, 4}) {
      const double stale = hpcsim::expected_straggler_step_s(
          m, hpcsim::StragglerMitigation::BoundedStaleness, step_s, ranks, 1,
          s);
      EXPECT_LE(stale, prev_stale + 1e-12) << "ranks=" << ranks << " s=" << s;
      prev_stale = stale;  // a looser bound hides more of the tail
    }
    EXPECT_GT(sync, step_s);  // stragglers genuinely cost something
  }
  // Bounded staleness charges every rank's bound overshoot additively (the
  // quorum waits out each clamp), so unlike backup workers it only beats
  // synchronous tolerance when stalls are rare relative to the bound — the
  // regime the mitigation is for.  Assert the win there.
  m.prob = 0.01;
  for (const Index ranks : {4, 8}) {
    const double sync = hpcsim::expected_straggler_step_s(
        m, hpcsim::StragglerMitigation::Synchronous, step_s, ranks, 1, 4);
    const double stale = hpcsim::expected_straggler_step_s(
        m, hpcsim::StragglerMitigation::BoundedStaleness, step_s, ranks, 1, 4);
    EXPECT_LT(stale, sync) << "ranks=" << ranks;
  }
}

// ---- resilient trainer under heavy-tailed stragglers ------------------------

ResilientOptions straggler_options(const std::string& tag, Index replicas,
                                   Index epochs) {
  ResilientOptions o;
  o.train.replicas = replicas;
  o.train.batch_per_replica = 8;
  o.train.epochs = epochs;
  o.train.seed = 71;
  o.step_seconds = 0.02;
  o.checkpoint_every_steps = 10;
  o.checkpoint_path = "/tmp/candle_straggler_" + tag + ".bin";
  o.collective_timeout = std::chrono::milliseconds(2000);
  return o;
}

void cleanup(const ResilientOptions& o) {
  std::filesystem::remove(o.checkpoint_path);
  std::filesystem::remove(o.checkpoint_path + ".tmp");
}

// The acceptance configuration from the issue: 8 virtual ranks, a seeded
// heavy-tail schedule with >= 2 stragglers, every delay >= 5x the nominal
// step time (min_delay 0.1 s at step_seconds 0.02).
FaultSchedule acceptance_schedule() {
  return runtime::pareto_straggler_schedule(
      905, /*steps=*/20, /*ranks=*/8, /*stragglers=*/3,
      /*alpha=*/2.5, /*min_delay_s=*/0.1, /*max_delay_s=*/0.2);
}

ResilientResult run_mode(const std::string& tag, MitigationMode mode,
                         const FaultSchedule& sched, Model* out,
                         Index replicas = 8, Index epochs = 5) {
  const Dataset d = blob_dataset(32 * replicas, 61);
  ResilientOptions o = straggler_options(tag, replicas, epochs);
  o.faults = sched;
  o.mitigation = mode;
  o.backup_workers = 2;
  o.staleness_bound = 8;
  const ResilientResult res =
      train_resilient(blob_model_factory(62), [] { return make_adam(5e-3f); },
                      d, SoftmaxCrossEntropy(), o, out);
  cleanup(o);
  return res;
}

TEST(StragglerHarness, MitigationBeatsSynchronousToleranceUnderTailDelays) {
  const FaultSchedule sched = acceptance_schedule();
  ASSERT_GE(sched.events.size(), 2u);
  for (const auto& ev : sched.events) EXPECT_GE(ev.delay_s, 0.1);

  Model sync_model, backup_model, stale_model;
  const ResilientResult sync =
      run_mode("sync", MitigationMode::None, sched, &sync_model);
  const ResilientResult backup =
      run_mode("backup", MitigationMode::Backup, sched, &backup_model);
  const ResilientResult stale =
      run_mode("stale", MitigationMode::BoundedStaleness, sched, &stale_model);

  for (const ResilientResult* r : {&sync, &backup, &stale}) {
    EXPECT_EQ(r->committed_steps, r->planned_steps);
    EXPECT_EQ(r->executed_steps, r->planned_steps);  // stalls are not faults
    EXPECT_EQ(r->restarts, 0);
    EXPECT_EQ(r->crashes, 0);
    EXPECT_EQ(r->stragglers, static_cast<Index>(sched.events.size()));
  }

  // (a) Modeled wall-clock: both disciplines cut >= 25% off synchronous
  // tolerance — the whole point of mitigation beyond tolerance.
  EXPECT_GT(sync.modeled_stall_s, 0.0);
  EXPECT_LE(backup.modeled_wallclock_s(), 0.75 * sync.modeled_wallclock_s())
      << "backup=" << backup.modeled_wallclock_s()
      << " sync=" << sync.modeled_wallclock_s();
  EXPECT_LE(stale.modeled_wallclock_s(), 0.75 * sync.modeled_wallclock_s())
      << "stale=" << stale.modeled_wallclock_s()
      << " sync=" << sync.modeled_wallclock_s();

  // (b) Final loss within tolerance of the synchronous baseline: discarding
  // or down-weighting a few gradient sets must not derail convergence.
  const Dataset d = blob_dataset(32 * 8, 61);
  const float sync_loss = eval_loss(sync_model, d);
  EXPECT_NEAR(eval_loss(backup_model, d), sync_loss, 1e-3);
  EXPECT_NEAR(eval_loss(stale_model, d), sync_loss, 1e-3);

  // Mode-specific accounting: the backup quorum committed short of full
  // width and discarded late work; the stale mode merged weighted stale
  // gradients without ever exceeding the bound.
  EXPECT_GT(backup.quorum_commits, 0);
  EXPECT_GT(backup.late_discards, 0);
  EXPECT_GT(stale.stale_applied, 0);
  EXPECT_GT(stale.mean_staleness, 0.0);
  EXPECT_LE(stale.mean_staleness,
            static_cast<double>(stale.max_staleness));
  EXPECT_LE(stale.max_staleness, 8);
}

TEST(StragglerHarness, ReplayIsBitIdenticalUnderFixedSeed) {
  const FaultSchedule sched = acceptance_schedule();
  for (const MitigationMode mode :
       {MitigationMode::Backup, MitigationMode::BoundedStaleness}) {
    Model a, b;
    const ResilientResult ra = run_mode("replay_a", mode, sched, &a);
    const ResilientResult rb = run_mode("replay_b", mode, sched, &b);
    EXPECT_EQ(weights_of(a), weights_of(b))
        << mitigation_mode_name(mode) << ": weights must replay bitwise";
    EXPECT_EQ(ra.rank_stall_s, rb.rank_stall_s);
    EXPECT_DOUBLE_EQ(ra.modeled_wallclock_s(), rb.modeled_wallclock_s());
    EXPECT_EQ(ra.quorum_commits, rb.quorum_commits);
    EXPECT_EQ(ra.stale_applied, rb.stale_applied);
    ASSERT_EQ(ra.log.size(), rb.log.size());
    for (std::size_t i = 0; i < ra.log.size(); ++i) {
      EXPECT_EQ(ra.log[i].step, rb.log[i].step);
      EXPECT_EQ(ra.log[i].rank, rb.log[i].rank);
      EXPECT_EQ(ra.log[i].kind, rb.log[i].kind);
      EXPECT_EQ(ra.log[i].phase, rb.log[i].phase);
      EXPECT_EQ(ra.log[i].detail, rb.log[i].detail);
    }
  }
}

TEST(StragglerHarness, PerRankStallTimeAttributesTheMitigatedRanks) {
  const FaultSchedule sched = acceptance_schedule();
  std::vector<double> expected(8, 0.0);
  for (const auto& ev : sched.events) {
    expected[static_cast<std::size_t>(ev.rank)] += ev.delay_s;
  }
  for (const MitigationMode mode :
       {MitigationMode::None, MitigationMode::Backup,
        MitigationMode::BoundedStaleness}) {
    const ResilientResult res = run_mode("attr", mode, sched, nullptr);
    ASSERT_EQ(res.rank_stall_s.size(), 8u) << mitigation_mode_name(mode);
    double total = 0.0;
    for (std::size_t r = 0; r < 8; ++r) {
      EXPECT_NEAR(res.rank_stall_s[r], expected[r], 1e-9)
          << mitigation_mode_name(mode) << " rank " << r;
      total += res.rank_stall_s[r];
    }
    EXPECT_NEAR(total, res.straggler_delay_s, 1e-9);
  }
}

TEST(StragglerHarness, SweepModesRanksAndDelayDistributions) {
  // {mode} x {ranks} x {fixed-delay, heavy-tail} grid: every mitigated run
  // commits all planned steps and never models more wall-clock than the
  // synchronous discipline under the identical schedule.
  for (const Index ranks : {4, 8}) {
    const Index epochs = 3;
    for (const bool heavy_tail : {false, true}) {
      FaultSchedule sched;
      if (heavy_tail) {
        sched = runtime::pareto_straggler_schedule(
            411, /*steps=*/4 * epochs, ranks, /*stragglers=*/2,
            /*alpha=*/2.5, /*min_delay_s=*/0.1, /*max_delay_s=*/0.2);
      } else {
        sched.straggle(2, ranks - 1, 0.1).straggle(5, 0, 0.1);
      }
      const std::string flavor = heavy_tail ? "pareto" : "fixed";
      const ResilientResult sync =
          run_mode("sweep_sync_" + flavor, MitigationMode::None, sched,
                   nullptr, ranks, epochs);
      for (const MitigationMode mode :
           {MitigationMode::Backup, MitigationMode::BoundedStaleness}) {
        const ResilientResult res =
            run_mode(std::string("sweep_") + mitigation_mode_name(mode) + "_" +
                         flavor,
                     mode, sched, nullptr, ranks, epochs);
        EXPECT_EQ(res.committed_steps, res.planned_steps)
            << mitigation_mode_name(mode) << " ranks=" << ranks << " "
            << flavor;
        EXPECT_EQ(res.stragglers, 2);
        EXPECT_LT(res.modeled_wallclock_s(), sync.modeled_wallclock_s())
            << mitigation_mode_name(mode) << " ranks=" << ranks << " "
            << flavor;
      }
    }
  }
}

TEST(StragglerHarness, AllRanksStragglingAtOnceStillCommits) {
  // Regression: in BoundedStaleness mode, a step where EVERY live rank
  // straggles from a fresh state used to spin forever — each rank became a
  // StaleCapture candidate, and the drain loop waiting for a contributor
  // never cleared the capture flags it was waiting on.  The fix demotes a
  // capture rank whose stall has been fully waited out to a fresh
  // contributor, so the step commits after exactly the modeled wait.
  FaultSchedule sched;
  sched.straggle(2, 0, 0.04).straggle(2, 1, 0.04);  // 2 steps at 0.02 s each
  const Dataset d = blob_dataset(64, 61);
  ResilientOptions o = straggler_options("allstall", 2, 3);
  o.faults = sched;
  o.mitigation = MitigationMode::BoundedStaleness;
  o.staleness_bound = 8;
  const ResilientResult res =
      train_resilient(blob_model_factory(62), [] { return make_adam(5e-3f); },
                      d, SoftmaxCrossEntropy(), o);
  cleanup(o);
  EXPECT_EQ(res.committed_steps, res.planned_steps);
  EXPECT_EQ(res.stragglers, 2);
  // Both ranks were demoted to fresh contributors after the fleet waited
  // out their (identical) 2-step stalls, so no stale gradient was applied
  // and the modeled stall is exactly the drained window.
  EXPECT_EQ(res.stale_applied, 0);
  EXPECT_NEAR(res.modeled_stall_s, 2 * 0.02, 1e-12);
}

TEST(StragglerHarness, SoleSurvivorStragglerDoesNotDeadlock) {
  // The single-rank corner of the same regression (what a fleet looks like
  // after an elastic shrink to one survivor): any straggler event on the
  // only rank made the drain loop unsatisfiable.
  FaultSchedule sched;
  sched.straggle(1, 0, 0.05);
  const Dataset d = blob_dataset(32, 61);
  ResilientOptions o = straggler_options("solo", 1, 2);
  o.faults = sched;
  o.mitigation = MitigationMode::BoundedStaleness;
  o.staleness_bound = 4;
  const ResilientResult res =
      train_resilient(blob_model_factory(62), [] { return make_adam(5e-3f); },
                      d, SoftmaxCrossEntropy(), o);
  cleanup(o);
  EXPECT_EQ(res.committed_steps, res.planned_steps);
  EXPECT_EQ(res.stragglers, 1);
  EXPECT_EQ(res.stale_applied, 0);
  EXPECT_GT(res.modeled_stall_s, 0.0);
}

TEST(StragglerHarness, CorruptionAimedAtStalledRankIsConsumedNotDropped) {
  // Regression: a GradientCorruption event scheduled for a rank that is
  // Stalled that step used to linger unconsumed forever (only computing
  // roles polled it), silently weakening composed schedules.  It must now
  // be consumed and logged as skipped — the rank had no gradient to
  // corrupt — with no corruption detected and no rollback taken.
  FaultSchedule sched;
  // Rank 1 straggles 3 steps (0.06 / 0.02) starting at step 2; while it is
  // Stalled at step 3, a corruption targets it.
  sched.straggle(2, 1, 0.06).corrupt(3, 1);
  const Dataset d = blob_dataset(128, 61);
  for (const MitigationMode mode :
       {MitigationMode::Backup, MitigationMode::BoundedStaleness}) {
    ResilientOptions o = straggler_options("skipcorrupt", 4, 3);
    o.faults = sched;
    o.mitigation = mode;
    o.backup_workers = 2;
    o.staleness_bound = 8;
    const ResilientResult res = train_resilient(
        blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
        SoftmaxCrossEntropy(), o);
    cleanup(o);
    EXPECT_EQ(res.committed_steps, res.planned_steps)
        << mitigation_mode_name(mode);
    EXPECT_EQ(res.corruptions, 0) << mitigation_mode_name(mode);
    EXPECT_EQ(res.corruptions_skipped, 1) << mitigation_mode_name(mode);
    EXPECT_EQ(res.restarts, 0) << mitigation_mode_name(mode);
    bool skipped_logged = false;
    for (const auto& rec : res.log) {
      skipped_logged = skipped_logged ||
                       (rec.kind == FaultKind::GradientCorruption &&
                        rec.phase == "skipped" && rec.step == 3 &&
                        rec.rank == 1);
    }
    EXPECT_TRUE(skipped_logged) << mitigation_mode_name(mode);
  }
}

TEST(StragglerHarness, CorruptionOnStalePushIsDetectedCollectively) {
  // A corruption that lands on the step where the straggler pushes its
  // stale gradient rides the pushed buffer onto the wire and must be
  // caught by the post-reduce finiteness check — detected, rolled back,
  // and the run still completes every planned step.
  FaultSchedule sched;
  // Rank 1 straggles 2 steps starting at step 2 (capture at 2, stalled at
  // 3, pushes at 4); the corruption fires exactly at the push.
  sched.straggle(2, 1, 0.04).corrupt(4, 1);
  const Dataset d = blob_dataset(128, 61);
  ResilientOptions o = straggler_options("pushcorrupt", 4, 3);
  o.faults = sched;
  o.mitigation = MitigationMode::BoundedStaleness;
  o.staleness_bound = 8;
  const ResilientResult res =
      train_resilient(blob_model_factory(62), [] { return make_adam(5e-3f); },
                      d, SoftmaxCrossEntropy(), o);
  cleanup(o);
  EXPECT_EQ(res.committed_steps, res.planned_steps);
  EXPECT_EQ(res.corruptions, 1);
  EXPECT_EQ(res.corruptions_skipped, 0);
  EXPECT_EQ(res.restarts, 1);
  EXPECT_GT(res.executed_steps, res.planned_steps);  // lost work replayed
}

TEST(StragglerHarness, BackupModeComposesWithCrashRecovery) {
  // A crash mid-run under backup mode: the rank failure still triggers a
  // checkpoint restore, mitigation state resets with the relaunched fleet,
  // and the run completes every planned step.
  FaultSchedule sched;
  sched.straggle(3, 1, 0.1).crash(6, 2).straggle(9, 4, 0.1);
  const Dataset d = blob_dataset(256, 61);
  ResilientOptions o = straggler_options("compose", 8, 5);
  o.faults = sched;
  o.mitigation = MitigationMode::Backup;
  o.backup_workers = 2;
  const ResilientResult res =
      train_resilient(blob_model_factory(62), [] { return make_adam(5e-3f); },
                      d, SoftmaxCrossEntropy(), o);
  EXPECT_EQ(res.committed_steps, res.planned_steps);
  EXPECT_EQ(res.crashes, 1);
  EXPECT_EQ(res.restarts, 1);
  EXPECT_EQ(res.stragglers, 2);
  EXPECT_GT(res.executed_steps, res.planned_steps);  // lost work replayed
  cleanup(o);
}

TEST(StragglerHarness, RejectsDegenerateMitigationParameters) {
  const Dataset d = blob_dataset(64, 61);
  ResilientOptions o = straggler_options("reject", 4, 1);
  o.mitigation = MitigationMode::Backup;
  o.backup_workers = 4;  // would leave an empty quorum
  EXPECT_THROW(train_resilient(blob_model_factory(62),
                               [] { return make_sgd(0.1f); }, d,
                               SoftmaxCrossEntropy(), o),
               Error);
  ResilientOptions o2 = straggler_options("reject2", 4, 1);
  o2.mitigation = MitigationMode::BoundedStaleness;
  o2.staleness_bound = 0;  // no lag allowed: not a mitigation
  EXPECT_THROW(train_resilient(blob_model_factory(62),
                               [] { return make_sgd(0.1f); }, d,
                               SoftmaxCrossEntropy(), o2),
               Error);
}

}  // namespace
}  // namespace candle::parallel

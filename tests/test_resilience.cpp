// Fault-tolerance tests: failure-aware collectives (typed RankFailure, no
// hangs, shrink), checkpoint format v2 (CRC, atomicity, optimizer state, v1
// compat), the resilient data-parallel trainer end-to-end (bit-identical
// checkpoint/restart, elastic shrink, corruption rollback), and the analytic
// Young/Daly model pinned against both the Monte-Carlo simulator and the
// measured overhead of the executable runtime.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "hpcsim/resilience.hpp"
#include "nn/metrics.hpp"
#include "nn/serialize.hpp"
#include "parallel/collectives.hpp"
#include "parallel/resilient.hpp"
#include "runtime/checksum.hpp"
#include "runtime/fault.hpp"
#include "runtime/rng.hpp"

namespace candle::parallel {
namespace {

using runtime::FaultKind;
using runtime::FaultSchedule;

void run_ranks(Index p, const std::function<void(Index)>& body) {
  std::vector<std::thread> threads;
  for (Index r = 0; r < p; ++r) threads.emplace_back([&, r] { body(r); });
  for (auto& t : threads) t.join();
}

// ---- crc32 ------------------------------------------------------------------

TEST(Crc32, KnownAnswer) {
  // The canonical CRC32 check value.
  EXPECT_EQ(runtime::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(runtime::crc32("", 0), 0u);
  // Chained updates equal the one-shot checksum of the concatenation.
  std::uint32_t crc = runtime::crc32_update(0, "1234", 4);
  crc = runtime::crc32_update(crc, "56789", 5);
  EXPECT_EQ(crc, 0xCBF43926u);
}

// ---- fault schedule / injector ----------------------------------------------

TEST(FaultInjector, EventsAreOneShot) {
  FaultSchedule sched;
  sched.crash(3, 1).straggle(5, 0, 0.25).fail_checkpoint(4).corrupt(6, 2, 8);
  runtime::FaultInjector inj(sched);
  EXPECT_EQ(inj.remaining(), 4);
  EXPECT_FALSE(inj.poll(FaultKind::ReplicaCrash, 3, 0).has_value());
  auto hit = inj.poll(FaultKind::ReplicaCrash, 3, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->announce);
  // Consumed: replaying the same step does not re-fire (restart safety).
  EXPECT_FALSE(inj.poll(FaultKind::ReplicaCrash, 3, 1).has_value());
  EXPECT_TRUE(inj.checkpoint_should_fail(4));
  EXPECT_FALSE(inj.checkpoint_should_fail(4));
  auto corrupt = inj.poll(FaultKind::GradientCorruption, 6, 2);
  ASSERT_TRUE(corrupt.has_value());
  EXPECT_EQ(corrupt->corrupt_count, 8);
  EXPECT_EQ(inj.remaining(), 1);
}

TEST(FaultInjector, RandomScheduleIsDeterministic) {
  const auto a = runtime::random_fault_schedule(7, 100, 4, 5, 2, 3, 0.01);
  const auto b = runtime::random_fault_schedule(7, 100, 4, 5, 2, 3, 0.01);
  ASSERT_EQ(a.events.size(), 10u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].step, b.events[i].step);
    EXPECT_EQ(a.events[i].rank, b.events[i].rank);
    EXPECT_GE(a.events[i].step, 1);
    EXPECT_LT(a.events[i].step, 100);
    EXPECT_LT(a.events[i].rank, 4);
  }
}

TEST(FaultInjector, RandomSchedulePropertiesHoldAcrossSeeds) {
  // Randomized property test: for parameters drawn from a seeded meta-RNG,
  // the generator must (a) replay the identical event list for the same
  // seed, (b) emit exactly the requested count of each fault kind, and
  // (c) never place two events in the same (step, rank) cell.
  Pcg32 meta(20260806);
  for (int trial = 0; trial < 16; ++trial) {
    const auto seed = static_cast<std::uint64_t>(meta.next_u32());
    const Index steps = 20 + static_cast<Index>(meta.next_u32() % 200);
    const Index ranks = 2 + static_cast<Index>(meta.next_u32() % 15);
    const Index cells = (steps - 1) * ranks;
    const Index crashes = static_cast<Index>(meta.next_u32()) % 4;
    const Index stragglers = static_cast<Index>(meta.next_u32()) % 4;
    const Index corruptions = static_cast<Index>(meta.next_u32()) % 4;
    if (crashes + stragglers + corruptions > cells) continue;
    const auto a = runtime::random_fault_schedule(
        seed, steps, ranks, crashes, stragglers, corruptions, 0.25);
    const auto b = runtime::random_fault_schedule(
        seed, steps, ranks, crashes, stragglers, corruptions, 0.25);
    ASSERT_EQ(a.events.size(),
              static_cast<std::size_t>(crashes + stragglers + corruptions));
    Index n_crash = 0, n_straggle = 0, n_corrupt = 0;
    std::vector<std::pair<Index, Index>> occupied;
    for (std::size_t i = 0; i < a.events.size(); ++i) {
      const auto& ev = a.events[i];
      EXPECT_EQ(ev.kind, b.events[i].kind);
      EXPECT_EQ(ev.step, b.events[i].step);
      EXPECT_EQ(ev.rank, b.events[i].rank);
      EXPECT_GE(ev.step, 1);
      EXPECT_LT(ev.step, steps);
      EXPECT_GE(ev.rank, 0);
      EXPECT_LT(ev.rank, ranks);
      n_crash += ev.kind == FaultKind::ReplicaCrash;
      n_straggle += ev.kind == FaultKind::Straggler;
      n_corrupt += ev.kind == FaultKind::GradientCorruption;
      if (ev.kind == FaultKind::Straggler) {
        EXPECT_DOUBLE_EQ(ev.delay_s, 0.25);
      }
      occupied.emplace_back(ev.step, ev.rank);
    }
    EXPECT_EQ(n_crash, crashes) << "seed=" << seed;
    EXPECT_EQ(n_straggle, stragglers) << "seed=" << seed;
    EXPECT_EQ(n_corrupt, corruptions) << "seed=" << seed;
    std::sort(occupied.begin(), occupied.end());
    EXPECT_EQ(std::adjacent_find(occupied.begin(), occupied.end()),
              occupied.end())
        << "two events share a (step, rank) cell; seed=" << seed;
  }
}

TEST(FaultInjector, RecordsStructuredLog) {
  runtime::FaultInjector inj(FaultSchedule{});
  inj.record(5, 2, FaultKind::ReplicaCrash, "injected", "announced crash");
  inj.record(5, -1, FaultKind::ReplicaCrash, "recovered", "restored");
  const auto log = inj.log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].phase, "injected");
  EXPECT_EQ(log[0].rank, 2);
  EXPECT_EQ(log[1].phase, "recovered");
  EXPECT_GE(log[1].t_s, log[0].t_s);
  EXPECT_STREQ(runtime::fault_kind_name(log[0].kind), "replica-crash");
}

// ---- failure-aware collectives ----------------------------------------------

TEST(FailureAwareCollectives, AnnouncedDeathThrowsOnAllSurvivors) {
  ShmCommunicator comm(3);
  comm.set_timeout(std::chrono::milliseconds(5000));
  std::atomic<int> failures{0};
  run_ranks(3, [&](Index r) {
    if (r == 0) {
      comm.mark_failed(0);  // cooperative crash notification, then death
      return;
    }
    std::vector<float> buf(32, 1.0f);
    try {
      comm.allreduce_ring(r, buf);
      FAIL() << "survivor rank " << r << " completed a dead collective";
    } catch (const RankFailure& e) {
      ++failures;
      ASSERT_EQ(e.failed_ranks().size(), 1u);
      EXPECT_EQ(e.failed_ranks()[0], 0);
    }
  });
  EXPECT_EQ(failures.load(), 2);
  EXPECT_TRUE(comm.has_failures());
}

TEST(FailureAwareCollectives, SilentDeathDetectedByTimeout) {
  ShmCommunicator comm(3);
  comm.set_timeout(std::chrono::milliseconds(150));
  std::atomic<int> failures{0};
  // Rank 1 simply never shows up: no announcement, no participation.
  run_ranks(3, [&](Index r) {
    if (r == 1) return;
    std::vector<float> buf(16, static_cast<float>(r));
    try {
      comm.allreduce_flat(r, buf);
      FAIL() << "survivor rank " << r << " completed a dead collective";
    } catch (const RankFailure& e) {
      ++failures;
      ASSERT_EQ(e.failed_ranks().size(), 1u);
      EXPECT_EQ(e.failed_ranks()[0], 1);  // timeout names the absentee
    }
  });
  EXPECT_EQ(failures.load(), 2);
  const auto dead = comm.failed_ranks();
  ASSERT_EQ(dead.size(), 1u);
  EXPECT_EQ(dead[0], 1);
}

TEST(FailureAwareCollectives, PoisonedCommunicatorThrowsImmediately) {
  ShmCommunicator comm(2);
  comm.mark_failed(1);
  EXPECT_THROW(comm.barrier(), RankFailure);
  std::vector<float> buf(4, 0.0f);
  EXPECT_THROW(comm.allreduce_ring(0, buf), RankFailure);
  EXPECT_THROW(comm.broadcast(0, buf), RankFailure);
}

TEST(FailureAwareCollectives, ShrinkRebuildsWorkingCommunicator) {
  ShmCommunicator comm(4);
  comm.set_timeout(std::chrono::milliseconds(5000));
  run_ranks(4, [&](Index r) {
    if (r == 2) {
      comm.mark_failed(2);
      return;
    }
    std::vector<float> buf(8, 1.0f);
    EXPECT_THROW(comm.allreduce_ring(r, buf), RankFailure);
  });
  const ShmCommunicator::Shrunk shrunk = comm.shrink();
  ASSERT_EQ(shrunk.comm->ranks(), 3);
  ASSERT_EQ(shrunk.old_rank, (std::vector<Index>{0, 1, 3}));
  // The shrunk communicator actually works: a real ring all-reduce.
  std::vector<std::vector<float>> bufs(3, std::vector<float>(10));
  for (Index r = 0; r < 3; ++r) {
    for (std::size_t i = 0; i < 10; ++i) {
      bufs[static_cast<std::size_t>(r)][i] = static_cast<float>(r + 1);
    }
  }
  run_ranks(3, [&](Index r) {
    shrunk.comm->allreduce_ring(r, bufs[static_cast<std::size_t>(r)]);
  });
  for (const auto& buf : bufs) {
    for (float v : buf) EXPECT_EQ(v, 6.0f);  // 1 + 2 + 3
  }
}

TEST(FailureAwareCollectives, MismatchedSizesStillThrowTogether) {
  // The pre-collective span-length validation: all live ranks throw in the
  // registration phase, before any reduction touches a span.
  ShmCommunicator comm(3);
  std::vector<float> a(8), b(8), c(9);
  std::atomic<int> errors{0};
  run_ranks(3, [&](Index r) {
    std::span<float> buf = r == 0 ? std::span<float>(a)
                          : r == 1 ? std::span<float>(b)
                                   : std::span<float>(c);
    try {
      comm.allreduce_ring(r, buf);
    } catch (const Error&) {
      ++errors;
    }
  });
  EXPECT_EQ(errors.load(), 3);
  EXPECT_FALSE(comm.has_failures());  // misuse, not a rank death
}

// ---- checkpoint format v2 ---------------------------------------------------

Model small_model(std::uint64_t seed) {
  Model m;
  m.add(make_dense(12)).add(make_relu()).add(make_dense(2));
  m.build({6}, seed);
  return m;
}

Dataset blob_dataset(Index n, std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({n, 6}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < 6; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  return d;
}

std::vector<float> weights_of(const Model& m) {
  std::vector<float> w(static_cast<std::size_t>(m.num_params()));
  m.copy_weights_to(w);
  return w;
}

TEST(CheckpointV2, RoundTripsOptimizerStateBitIdentically) {
  const std::string path = "/tmp/candle_resil_ckpt1.bin";
  const Dataset d = blob_dataset(64, 11);
  SoftmaxCrossEntropy xent;

  Model a = small_model(12);
  Adam opt_a(5e-3f);
  for (Index s = 0; s < 5; ++s) a.train_batch(d.x, d.y, xent, opt_a);
  save_checkpoint(a, &opt_a, /*step=*/5, path);

  Model b = small_model(999);  // different init, fully overwritten by load
  Adam opt_b(5e-3f);
  const CheckpointMeta meta = load_checkpoint(b, &opt_b, path);
  EXPECT_EQ(meta.version, 2u);
  EXPECT_EQ(meta.step, 5);
  EXPECT_TRUE(meta.has_optimizer);
  EXPECT_EQ(weights_of(a), weights_of(b));

  // Continuation is bit-identical: Adam moments AND step counters restored.
  for (Index s = 0; s < 4; ++s) {
    a.train_batch(d.x, d.y, xent, opt_a);
    b.train_batch(d.x, d.y, xent, opt_b);
  }
  EXPECT_EQ(weights_of(a), weights_of(b));
  std::filesystem::remove(path);
}

TEST(CheckpointV2, OptimizerSnapshotsRoundTripForEveryKind) {
  const Dataset d = blob_dataset(64, 21);
  SoftmaxCrossEntropy xent;
  for (const std::string kind : {"sgd", "momentum", "rmsprop", "adam"}) {
    Model a = small_model(22);
    auto opt_a = make_optimizer(kind, 0.01f);
    for (Index s = 0; s < 3; ++s) a.train_batch(d.x, d.y, xent, *opt_a);
    const OptimizerSnapshot snap = opt_a->export_state();
    EXPECT_EQ(snap.name, kind);

    Model b = small_model(23);
    b.set_weights_from(weights_of(a));
    auto opt_b = make_optimizer(kind, 0.01f);
    opt_b->import_state(snap);
    for (Index s = 0; s < 3; ++s) {
      a.train_batch(d.x, d.y, xent, *opt_a);
      b.train_batch(d.x, d.y, xent, *opt_b);
    }
    EXPECT_EQ(weights_of(a), weights_of(b)) << kind;
  }
  // Kind mismatch is rejected.
  auto adam = make_adam(1e-3f);
  auto sgd = make_sgd(0.1f);
  EXPECT_THROW(sgd->import_state(adam->export_state()), Error);
}

TEST(CheckpointV2, CrcDetectsCorruptionAndTruncation) {
  const std::string path = "/tmp/candle_resil_ckpt2.bin";
  Model m = small_model(31);
  Adam opt(1e-3f);
  save_checkpoint(m, &opt, 3, path);

  // Flip one payload byte: CRC must catch it.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(40);
    char byte = 0;
    f.seekg(40);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x20);
    f.seekp(40);
    f.write(&byte, 1);
  }
  Model victim = small_model(32);
  EXPECT_THROW(load_checkpoint(victim, nullptr, path), Error);

  // Truncated file (simulates a crash mid-write without atomic rename).
  save_checkpoint(m, &opt, 3, path);
  const auto full = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full / 2);
  EXPECT_THROW(load_checkpoint(victim, nullptr, path), Error);
  std::filesystem::remove(path);
}

TEST(CheckpointV2, WritesAreAtomicOverStaleTempFiles) {
  const std::string path = "/tmp/candle_resil_ckpt3.bin";
  Model m = small_model(41);
  save_weights(m, path);
  // A previous writer died mid-checkpoint, leaving a garbage temp file; the
  // destination still loads, and the next save overwrites the stale temp.
  {
    std::ofstream junk(path + ".tmp", std::ios::binary);
    junk << "partial garbage";
  }
  Model v = small_model(42);
  load_weights(v, path);
  EXPECT_EQ(weights_of(m), weights_of(v));
  save_weights(m, path);
  load_weights(v, path);
  EXPECT_EQ(weights_of(m), weights_of(v));
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(CheckpointV2, LoadsLegacyV1WeightsOnlyFiles) {
  const std::string path = "/tmp/candle_resil_ckpt4.bin";
  Model m = small_model(51);
  // Hand-write a v1 file: magic, count, then rank/dims/data per tensor.
  {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    const std::uint32_t magic = 0xCA9D1E01u;
    os.write(reinterpret_cast<const char*>(&magic), sizeof(magic));
    auto params = m.params();
    const std::uint64_t count = params.size();
    os.write(reinterpret_cast<const char*>(&count), sizeof(count));
    for (const Tensor* p : params) {
      const std::uint32_t rank = static_cast<std::uint32_t>(p->ndim());
      os.write(reinterpret_cast<const char*>(&rank), sizeof(rank));
      for (Index dd = 0; dd < p->ndim(); ++dd) {
        const std::int64_t dim = p->dim(dd);
        os.write(reinterpret_cast<const char*>(&dim), sizeof(dim));
      }
      os.write(reinterpret_cast<const char*>(p->data()),
               static_cast<std::streamsize>(p->numel() * sizeof(float)));
    }
  }
  Model v = small_model(52);
  Adam opt(1e-3f);
  const CheckpointMeta meta = load_checkpoint(v, &opt, path);
  EXPECT_EQ(meta.version, 1u);
  EXPECT_FALSE(meta.has_optimizer);
  EXPECT_EQ(weights_of(m), weights_of(v));
  std::filesystem::remove(path);
}

// ---- analytic model vs Monte-Carlo simulation -------------------------------

TEST(ResilienceModel, SimulationPinsClosedFormAcrossConfigGrid) {
  // expected_runtime_s is a first-order model; the discrete-event simulator
  // is the ground truth.  Across a grid of (nodes, MTBF, checkpoint cost)
  // the two must agree within a stated tolerance that scales with the
  // failure intensity (the closed form ignores failures during re-done
  // work, a second-order term).
  for (const Index nodes : {512, 4096}) {
    for (const double mtbf_h : {2000.0, 20000.0}) {
      for (const double state_gb : {1.0, 8.0}) {
        hpcsim::ResilienceConfig cfg;
        cfg.nodes = nodes;
        cfg.node_mtbf_hours = mtbf_h;
        cfg.checkpoint_state_gb = state_gb;
        cfg.checkpoint_bandwidth_gbs = 50.0;
        cfg.restart_overhead_s = 60.0;
        const double interval = hpcsim::optimal_checkpoint_interval_s(cfg);
        const double work = 300.0 * interval;
        const double analytic = hpcsim::expected_runtime_s(cfg, work, interval);
        const double simulated =
            hpcsim::simulate_runtime_s(cfg, work, interval, 400, 77);
        const double intensity = interval / hpcsim::job_mtbf_s(cfg);
        const double tol = 0.02 + 2.0 * intensity;  // second-order headroom
        EXPECT_NEAR(simulated / analytic, 1.0, tol)
            << "nodes=" << nodes << " mtbf_h=" << mtbf_h
            << " state_gb=" << state_gb;
      }
    }
  }
}

TEST(ResilienceModel, OptimalIntervalMinimizesSimulatedRuntime) {
  // Property: the Young/Daly interval beats +/-2x perturbations of itself
  // under the executable simulator (shallow optimum, so a failure-heavy
  // config is used to get the curvature above simulation noise).
  hpcsim::ResilienceConfig cfg;
  cfg.nodes = 4096;
  cfg.node_mtbf_hours = 200.0;         // job MTBF ~175 s: failure-heavy
  cfg.checkpoint_state_gb = 200.0;     // 4 s checkpoints
  cfg.checkpoint_bandwidth_gbs = 50.0;
  cfg.restart_overhead_s = 60.0;
  const double opt = hpcsim::optimal_checkpoint_interval_s(cfg);
  const double work = 100.0 * opt;
  const Index trials = 1500;
  const double at_opt = hpcsim::simulate_runtime_s(cfg, work, opt, trials, 5);
  const double at_half =
      hpcsim::simulate_runtime_s(cfg, work, 0.5 * opt, trials, 5);
  const double at_double =
      hpcsim::simulate_runtime_s(cfg, work, 2.0 * opt, trials, 5);
  EXPECT_LE(at_opt, at_half * 1.02);
  EXPECT_LE(at_opt, at_double * 1.02);
}

// ---- resilient end-to-end ---------------------------------------------------

ModelFactory blob_model_factory(std::uint64_t seed) {
  return [seed] {
    Model m;
    m.add(make_dense(12)).add(make_relu()).add(make_dense(2));
    m.build({6}, seed);
    return m;
  };
}

ResilientOptions base_options(const std::string& tag) {
  ResilientOptions o;
  o.train.replicas = 4;
  o.train.batch_per_replica = 16;
  o.train.epochs = 4;   // 256 samples / 64 global batch = 4 steps/epoch
  o.train.seed = 71;
  o.checkpoint_every_steps = 4;
  o.checkpoint_path = "/tmp/candle_resil_e2e_" + tag + ".bin";
  o.collective_timeout = std::chrono::milliseconds(500);
  return o;
}

void cleanup(const ResilientOptions& o) {
  std::filesystem::remove(o.checkpoint_path);
  std::filesystem::remove(o.checkpoint_path + ".tmp");
}

TEST(ResilientTraining, FailureFreeMatchesPlainDataParallelBitwise) {
  const Dataset d = blob_dataset(256, 61);
  ResilientOptions o = base_options("clean");
  Model resilient_model;
  const ResilientResult res = train_resilient(
      blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), o, &resilient_model);
  EXPECT_EQ(res.committed_steps, 16);
  EXPECT_EQ(res.executed_steps, 16);
  EXPECT_EQ(res.restarts, 0);
  EXPECT_GT(res.checkpoints_written, 0);

  Model plain_model;
  train_data_parallel(blob_model_factory(62), [] { return make_adam(5e-3f); },
                      d, SoftmaxCrossEntropy(), o.train, &plain_model);
  EXPECT_EQ(weights_of(resilient_model), weights_of(plain_model))
      << "the resilient wrapper must not perturb failure-free numerics";
  cleanup(o);
}

TEST(ResilientTraining, ThreeCrashesRestoreBitIdentically) {
  const Dataset d = blob_dataset(256, 61);

  ResilientOptions clean = base_options("ref");
  Model reference;
  train_resilient(blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
                  SoftmaxCrossEntropy(), clean, &reference);

  ResilientOptions faulty = base_options("crash3");
  faulty.faults.crash(3, 1)
      .crash(7, 2, /*announce=*/false)  // silent: timeout detection path
      .crash(11, 0);
  Model recovered;
  const ResilientResult res = train_resilient(
      blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), faulty, &recovered);

  EXPECT_EQ(res.crashes, 3);
  EXPECT_EQ(res.restarts, 3);
  EXPECT_EQ(res.shrinks, 0);
  EXPECT_EQ(res.committed_steps, res.planned_steps);
  EXPECT_GT(res.executed_steps, res.committed_steps);  // lost work replayed
  EXPECT_EQ(res.final_replicas, 4);
  EXPECT_EQ(weights_of(recovered), weights_of(reference))
      << "checkpoint restore + deterministic replay must be bit-identical";

  // The structured log saw every phase.
  Index injected = 0, detected = 0, recovered_n = 0;
  for (const auto& rec : res.log) {
    injected += rec.phase == "injected";
    detected += rec.phase == "detected";
    recovered_n += rec.phase == "recovered";
  }
  EXPECT_EQ(injected, 3);
  EXPECT_EQ(detected, 3);
  EXPECT_EQ(recovered_n, 3);
  cleanup(faulty);
  cleanup(clean);
}

TEST(ResilientTraining, CorruptionRollsBackBitIdentically) {
  const Dataset d = blob_dataset(256, 61);
  ResilientOptions clean = base_options("ref2");
  Model reference;
  train_resilient(blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
                  SoftmaxCrossEntropy(), clean, &reference);

  ResilientOptions faulty = base_options("corrupt");
  faulty.faults.corrupt(6, 2, 16);
  Model recovered;
  const ResilientResult res = train_resilient(
      blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), faulty, &recovered);
  EXPECT_EQ(res.corruptions, 1);
  EXPECT_EQ(res.restarts, 1);
  EXPECT_EQ(weights_of(recovered), weights_of(reference));
  cleanup(faulty);
  cleanup(clean);
}

TEST(ResilientTraining, StragglerDelaysButDoesNotPerturb) {
  const Dataset d = blob_dataset(256, 61);
  ResilientOptions clean = base_options("ref3");
  Model reference;
  train_resilient(blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
                  SoftmaxCrossEntropy(), clean, &reference);

  ResilientOptions faulty = base_options("straggle");
  faulty.faults.straggle(4, 1, 0.05);
  Model out;
  const ResilientResult res = train_resilient(
      blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), faulty, &out);
  EXPECT_EQ(res.stragglers, 1);
  EXPECT_NEAR(res.straggler_delay_s, 0.05, 1e-6);
  EXPECT_EQ(res.restarts, 0);
  EXPECT_EQ(res.crashes, 0);
  // Per-rank attribution: the whole stall lands on rank 1, nowhere else,
  // and in synchronous-tolerance mode it sits on the modeled critical path.
  ASSERT_EQ(res.rank_stall_s.size(), 4u);
  EXPECT_NEAR(res.rank_stall_s[1], 0.05, 1e-6);
  EXPECT_DOUBLE_EQ(res.rank_stall_s[0], 0.0);
  EXPECT_DOUBLE_EQ(res.rank_stall_s[2], 0.0);
  EXPECT_DOUBLE_EQ(res.rank_stall_s[3], 0.0);
  EXPECT_NEAR(res.modeled_stall_s, 0.05, 1e-6);
  EXPECT_EQ(weights_of(out), weights_of(reference));
  cleanup(faulty);
  cleanup(clean);
}

TEST(ResilientTraining, FailedCheckpointWriteKeepsPreviousCheckpoint) {
  const Dataset d = blob_dataset(256, 61);
  ResilientOptions clean = base_options("ref4");
  Model reference;
  train_resilient(blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
                  SoftmaxCrossEntropy(), clean, &reference);

  // The write at step 8 fails persistently (every retry attempt polls the
  // injector, so retries + 1 scheduled failures exhaust the budget); the
  // crash at step 9 must restore the step-4 checkpoint (the newest durable
  // one) and still end bit-identical.
  ResilientOptions faulty = base_options("ckptfail");
  faulty.faults.fail_checkpoint(8).fail_checkpoint(8).fail_checkpoint(8);
  faulty.faults.crash(9, 3);
  Model recovered;
  const ResilientResult res = train_resilient(
      blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), faulty, &recovered);
  EXPECT_EQ(res.checkpoint_failures, 1);
  EXPECT_EQ(res.checkpoint_retries, 2);
  EXPECT_EQ(res.restarts, 1);
  // 9 committed - restored to 4 - replayed: at least 5 extra steps.
  EXPECT_GE(res.executed_steps, res.planned_steps + 5);
  EXPECT_EQ(weights_of(recovered), weights_of(reference));
  cleanup(faulty);
  cleanup(clean);
}

TEST(ResilientTraining, TransientCheckpointWriteFailureIsRetriedNotLost) {
  const Dataset d = blob_dataset(256, 61);
  ResilientOptions clean = base_options("ref4b");
  Model reference;
  train_resilient(blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
                  SoftmaxCrossEntropy(), clean, &reference);

  // A *single* scheduled failure at step 8 is transient: the bounded retry
  // succeeds on the second attempt, the step-8 checkpoint becomes durable,
  // and the crash at step 9 replays one step instead of the whole interval
  // (the pre-retry behavior, pinned above, replays at least five).
  ResilientOptions faulty = base_options("ckptretry");
  faulty.faults.fail_checkpoint(8).crash(9, 3);
  Model recovered;
  const ResilientResult res = train_resilient(
      blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), faulty, &recovered);
  EXPECT_EQ(res.checkpoint_retries, 1);
  EXPECT_EQ(res.checkpoint_failures, 0);
  EXPECT_EQ(res.restarts, 1);
  EXPECT_LE(res.executed_steps, res.planned_steps + 2);
  // The retry shows up in the structured fault log.
  // (Phase "retried" carries the attempt count; the final success means no
  // "injected" terminal record for this step.)
  EXPECT_EQ(weights_of(recovered), weights_of(reference));

  // With retries disabled the same schedule loses the interval again.
  ResilientOptions noretry = base_options("ckptnoretry");
  noretry.checkpoint_write_retries = 0;
  noretry.faults.fail_checkpoint(8).crash(9, 3);
  Model recovered2;
  const ResilientResult res2 = train_resilient(
      blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), noretry, &recovered2);
  EXPECT_EQ(res2.checkpoint_retries, 0);
  EXPECT_EQ(res2.checkpoint_failures, 1);
  EXPECT_GE(res2.executed_steps, res2.planned_steps + 5);
  EXPECT_EQ(weights_of(recovered2), weights_of(reference));
  cleanup(noretry);
  cleanup(faulty);
  cleanup(clean);
}

TEST(ResilientTraining, ColdRestartWhenNoDurableCheckpointExists) {
  const Dataset d = blob_dataset(256, 61);
  ResilientOptions clean = base_options("ref5");
  Model reference;
  train_resilient(blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
                  SoftmaxCrossEntropy(), clean, &reference);

  // Even the initial checkpoint write fails persistently (all retries
  // exhausted), then a replica dies: recovery falls back to a cold restart
  // from the deterministic factory state.
  ResilientOptions faulty = base_options("cold");
  faulty.faults.fail_checkpoint(0).fail_checkpoint(0).fail_checkpoint(0);
  faulty.faults.crash(2, 1);
  Model recovered;
  const ResilientResult res = train_resilient(
      blob_model_factory(62), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), faulty, &recovered);
  EXPECT_EQ(res.restarts, 1);
  EXPECT_EQ(weights_of(recovered), weights_of(reference));
  cleanup(faulty);
  cleanup(clean);
}

TEST(ResilientTraining, ElasticShrinkConvergesStatistically) {
  const Dataset d = blob_dataset(512, 41);
  ResilientOptions o;
  o.train.replicas = 4;
  o.train.batch_per_replica = 16;
  o.train.epochs = 8;  // 512 / 64 = 8 steps per epoch
  o.train.seed = 42;
  o.checkpoint_every_steps = 8;
  o.checkpoint_path = "/tmp/candle_resil_e2e_shrink.bin";
  o.collective_timeout = std::chrono::milliseconds(500);
  o.policy = RecoveryPolicy::Shrink;
  o.faults.crash(10, 2);
  Model trained;
  const ResilientResult res = train_resilient(
      blob_model_factory(43), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), o, &trained);
  EXPECT_EQ(res.shrinks, 1);
  EXPECT_EQ(res.restarts, 0);
  EXPECT_EQ(res.final_replicas, 3);
  EXPECT_EQ(res.committed_steps, res.planned_steps);
  ASSERT_EQ(res.epoch_loss.size(), 8u);
  // Statistical equivalence: the shrunk run still solves the task.
  EXPECT_LT(res.epoch_loss.back(), 0.5f * res.epoch_loss.front());
  EXPECT_GT(accuracy(trained.predict(d.x), d.y), 0.93);
  cleanup(o);
}

TEST(ResilientTraining, SingleSurvivorCrashFallsBackToRestart) {
  const Dataset d = blob_dataset(128, 81);
  ResilientOptions o;
  o.train.replicas = 1;
  o.train.batch_per_replica = 32;
  o.train.epochs = 3;   // 128/32 = 4 steps per epoch
  o.train.seed = 82;
  o.checkpoint_every_steps = 3;
  o.checkpoint_path = "/tmp/candle_resil_e2e_solo.bin";
  o.policy = RecoveryPolicy::Shrink;  // cannot shrink below one replica
  o.faults.crash(5, 0);
  Model trained;
  const ResilientResult res = train_resilient(
      blob_model_factory(83), [] { return make_sgd(0.05f); }, d,
      SoftmaxCrossEntropy(), o, &trained);
  EXPECT_EQ(res.shrinks, 0);
  EXPECT_EQ(res.restarts, 1);
  EXPECT_EQ(res.final_replicas, 1);
  EXPECT_EQ(res.committed_steps, res.planned_steps);
  cleanup(o);
}

TEST(ResilientTraining, MeasuredOverheadTracksAnalyticModel) {
  // A dense random crash schedule, with the analytic model configured to
  // the same failure intensity: the measured (modeled-accounting) overhead
  // factor must track expected_runtime_s.  This is the closed form
  // validated by the executable system it was written for.
  const Dataset d = blob_dataset(256, 91);
  ResilientOptions o;
  o.train.replicas = 4;
  o.train.batch_per_replica = 16;
  o.train.epochs = 50;  // 256/64 = 4 steps/epoch -> 200 planned steps
  o.train.seed = 92;
  o.checkpoint_every_steps = 10;
  o.checkpoint_path = "/tmp/candle_resil_e2e_overhead.bin";
  o.collective_timeout = std::chrono::milliseconds(2000);
  o.step_seconds = 1.0;
  // Analytic machine: job MTBF 15 s at 1 s steps, 2 s checkpoints, 3 s
  // restart.  16 injected crashes over ~240 s of modeled runtime matches
  // the 240/15 = 16 failures the closed form expects.
  o.resilience.nodes = 3600;
  o.resilience.node_mtbf_hours = 15.0;
  o.resilience.checkpoint_state_gb = 100.0;
  o.resilience.checkpoint_bandwidth_gbs = 50.0;  // 2 s per checkpoint
  o.resilience.restart_overhead_s = 3.0;
  o.max_recoveries = 64;
  o.faults = runtime::random_fault_schedule(1234, 200, 4, /*crashes=*/16);
  Model trained;
  const ResilientResult res = train_resilient(
      blob_model_factory(93), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), o, &trained);
  EXPECT_EQ(res.committed_steps, 200);
  EXPECT_EQ(res.crashes, 16);
  EXPECT_GT(res.overhead_factor(), 1.1);  // faults genuinely cost something
  EXPECT_GT(res.analytic_overhead_factor, 1.1);
  EXPECT_NEAR(res.overhead_factor() / res.analytic_overhead_factor, 1.0, 0.25)
      << "measured=" << res.overhead_factor()
      << " analytic=" << res.analytic_overhead_factor;
  cleanup(o);
}

TEST(ResilientTraining, RejectsUncheckpointableConfigurations) {
  const Dataset d = blob_dataset(128, 95);
  ResilientOptions o = base_options("reject");
  o.train.gradient_topk_fraction = 0.1;  // error-feedback residual state
  EXPECT_THROW(train_resilient(blob_model_factory(96),
                               [] { return make_sgd(0.1f); }, d,
                               SoftmaxCrossEntropy(), o),
               Error);
  ResilientOptions o2 = base_options("reject2");
  o2.checkpoint_path.clear();
  EXPECT_THROW(train_resilient(blob_model_factory(96),
                               [] { return make_sgd(0.1f); }, d,
                               SoftmaxCrossEntropy(), o2),
               Error);
}

}  // namespace
}  // namespace candle::parallel

// Parallel-runtime tests: collective correctness (ring vs flat vs serial
// sum), data-parallel gradient equivalence with serial training, replica
// synchronization invariants, stage balancing, and pipeline estimates.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>

#include "biodata/workloads.hpp"
#include "nn/metrics.hpp"
#include "parallel/collectives.hpp"
#include "parallel/data_parallel.hpp"
#include "parallel/model_parallel.hpp"
#include "parallel/workload.hpp"

namespace candle::parallel {
namespace {

void run_ranks(Index p, const std::function<void(Index)>& body) {
  std::vector<std::thread> threads;
  for (Index r = 0; r < p; ++r) threads.emplace_back([&, r] { body(r); });
  for (auto& t : threads) t.join();
}

class RingAllReduce : public ::testing::TestWithParam<int> {};

TEST_P(RingAllReduce, MatchesSerialSum) {
  const Index p = GetParam();
  const Index n = 103;  // not divisible by p: uneven chunks
  Pcg32 rng(static_cast<std::uint64_t>(p));
  std::vector<std::vector<float>> data(static_cast<std::size_t>(p));
  std::vector<float> expected(static_cast<std::size_t>(n), 0.0f);
  for (Index r = 0; r < p; ++r) {
    auto& v = data[static_cast<std::size_t>(r)];
    v.resize(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<float>(rng.normal());
      expected[i] += v[i];
    }
  }
  ShmCommunicator comm(p);
  run_ranks(p, [&](Index r) {
    comm.allreduce_ring(r, data[static_cast<std::size_t>(r)]);
  });
  for (Index r = 0; r < p; ++r) {
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(data[static_cast<std::size_t>(r)][i], expected[i], 1e-4f)
          << "rank " << r << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PartySizes, RingAllReduce,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(Collectives, FlatMatchesRing) {
  const Index p = 5, n = 64;
  Pcg32 rng(9);
  std::vector<std::vector<float>> a(static_cast<std::size_t>(p)),
      b(static_cast<std::size_t>(p));
  for (Index r = 0; r < p; ++r) {
    a[static_cast<std::size_t>(r)].resize(static_cast<std::size_t>(n));
    for (auto& v : a[static_cast<std::size_t>(r)]) {
      v = static_cast<float>(rng.normal());
    }
    b[static_cast<std::size_t>(r)] = a[static_cast<std::size_t>(r)];
  }
  {
    ShmCommunicator comm(p);
    run_ranks(p, [&](Index r) {
      comm.allreduce_ring(r, a[static_cast<std::size_t>(r)]);
    });
  }
  {
    ShmCommunicator comm(p);
    run_ranks(p, [&](Index r) {
      comm.allreduce_flat(r, b[static_cast<std::size_t>(r)]);
    });
  }
  for (Index r = 0; r < p; ++r) {
    for (Index i = 0; i < n; ++i) {
      EXPECT_NEAR(a[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                  b[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)],
                  1e-4f);
    }
  }
}

TEST(Collectives, BroadcastCopiesRoot) {
  const Index p = 4, n = 16;
  std::vector<std::vector<float>> data(static_cast<std::size_t>(p));
  for (Index r = 0; r < p; ++r) {
    data[static_cast<std::size_t>(r)].assign(static_cast<std::size_t>(n),
                                             static_cast<float>(r));
  }
  ShmCommunicator comm(p);
  run_ranks(p, [&](Index r) {
    comm.broadcast(r, data[static_cast<std::size_t>(r)]);
  });
  for (Index r = 0; r < p; ++r) {
    for (float v : data[static_cast<std::size_t>(r)]) EXPECT_EQ(v, 0.0f);
  }
}

TEST(Collectives, MismatchedSizesThrow) {
  ShmCommunicator comm(2);
  std::vector<float> a(8), b(9);
  std::atomic<int> errors{0};
  run_ranks(2, [&](Index r) {
    try {
      comm.allreduce_ring(r, r == 0 ? std::span<float>(a)
                                    : std::span<float>(b));
    } catch (const Error&) {
      ++errors;
    }
  });
  EXPECT_GT(errors.load(), 0);
}

// ---- data parallel -----------------------------------------------------------

Dataset blob_dataset(Index n, std::uint64_t seed) {
  Pcg32 rng(seed);
  Dataset d{Tensor({n, 6}), Tensor({n})};
  for (Index i = 0; i < n; ++i) {
    const float cls = static_cast<float>(i % 2);
    d.y[i] = cls;
    for (Index j = 0; j < 6; ++j) {
      d.x.at(i, j) = static_cast<float>(rng.normal(cls * 2.0 - 1.0, 0.8));
    }
  }
  return d;
}

ModelFactory blob_model_factory(std::uint64_t seed) {
  return [seed] {
    Model m;
    m.add(make_dense(12)).add(make_relu()).add(make_dense(2));
    m.build({6}, seed);
    return m;
  };
}

TEST(DataParallel, EquivalentToSerialTraining) {
  // p replicas x shard-batch b == serial batch p*b: same weights after the
  // same number of steps (up to fp32 reduction reassociation).
  const Dataset d = blob_dataset(256, 31);
  const Index p = 4, b = 16;

  DataParallelOptions opts;
  opts.replicas = p;
  opts.batch_per_replica = b;
  opts.epochs = 2;
  opts.seed = 32;
  Model dp_model;
  train_data_parallel(
      blob_model_factory(33), [] { return make_sgd(0.05f); }, d,
      SoftmaxCrossEntropy(), opts, &dp_model);

  // Serial reference: identical batch stream (same iterator seed).
  Model serial = blob_model_factory(33)();
  SoftmaxCrossEntropy xent;
  Sgd opt(0.05f);
  BatchIterator batches(d, p * b, /*shuffle=*/true, opts.seed);
  const Index steps = (d.size() / (p * b)) * opts.epochs;
  for (Index s = 0; s < steps; ++s) {
    const Dataset batch = batches.next();
    serial.train_batch(batch.x, batch.y, xent, opt);
  }

  std::vector<float> w_dp(static_cast<std::size_t>(serial.num_params()));
  std::vector<float> w_serial(w_dp.size());
  dp_model.copy_weights_to(w_dp);
  serial.copy_weights_to(w_serial);
  float max_diff = 0.0f;
  for (std::size_t i = 0; i < w_dp.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(w_dp[i] - w_serial[i]));
  }
  EXPECT_LT(max_diff, 5e-4f)
      << "data-parallel must match serial large-batch SGD";
}

TEST(DataParallel, LearnsTheTask) {
  const Dataset d = blob_dataset(512, 41);
  DataParallelOptions opts;
  opts.replicas = 4;
  opts.batch_per_replica = 16;
  opts.epochs = 8;
  opts.seed = 42;
  Model trained;
  const DataParallelResult res = train_data_parallel(
      blob_model_factory(43), [] { return make_adam(5e-3f); }, d,
      SoftmaxCrossEntropy(), opts, &trained);
  ASSERT_EQ(res.epoch_loss.size(), 8u);
  EXPECT_LT(res.epoch_loss.back(), res.epoch_loss.front());
  EXPECT_GT(accuracy(trained.predict(d.x), d.y), 0.95);
  EXPECT_EQ(res.steps, 8 * (512 / 64));
  EXPECT_GT(res.grad_bytes_per_step, 0.0);
}

TEST(DataParallel, SingleReplicaDegeneratesToSerial) {
  const Dataset d = blob_dataset(128, 51);
  DataParallelOptions opts;
  opts.replicas = 1;
  opts.batch_per_replica = 32;
  opts.epochs = 3;
  opts.seed = 52;
  Model trained;
  const DataParallelResult res = train_data_parallel(
      blob_model_factory(53), [] { return make_sgd(0.1f); }, d,
      SoftmaxCrossEntropy(), opts, &trained);
  EXPECT_EQ(res.epoch_loss.size(), 3u);
  EXPECT_EQ(res.modeled_comm_seconds_per_step, 0.0);
}

TEST(DataParallel, RejectsOversizedGlobalBatch) {
  const Dataset d = blob_dataset(32, 61);
  DataParallelOptions opts;
  opts.replicas = 8;
  opts.batch_per_replica = 16;  // global 128 > 32 samples
  EXPECT_THROW(train_data_parallel(
                   blob_model_factory(62), [] { return make_sgd(0.1f); }, d,
                   SoftmaxCrossEntropy(), opts),
               Error);
}

TEST(DataParallel, FabricAnnotationFillsModeledTime) {
  DataParallelResult res;
  res.grad_bytes_per_step = 4e6;
  annotate_with_fabric(res, hpcsim::fat_tree_fabric(),
                       hpcsim::AllReduceAlgo::Ring, 64);
  EXPECT_GT(res.modeled_comm_seconds_per_step, 0.0);
  DataParallelResult res2 = res;
  annotate_with_fabric(res2, hpcsim::fat_tree_fabric(),
                       hpcsim::AllReduceAlgo::Ring, 512);
  EXPECT_GT(res2.modeled_comm_seconds_per_step,
            res.modeled_comm_seconds_per_step);
}

// ---- model parallel ------------------------------------------------------------

Model deep_mlp(std::uint64_t seed) {
  Model m;
  m.add(make_dense(64)).add(make_relu());
  m.add(make_dense(64)).add(make_relu());
  m.add(make_dense(32)).add(make_relu());
  m.add(make_dense(4));
  m.build({16}, seed);
  return m;
}

TEST(StagePlan, BalancedContiguousAscending) {
  Model m = deep_mlp(71);
  const StagePlan plan = balance_stages(m, 3);
  EXPECT_EQ(plan.stages, 3);
  ASSERT_EQ(static_cast<Index>(plan.stage_of_layer.size()), m.num_layers());
  for (std::size_t i = 1; i < plan.stage_of_layer.size(); ++i) {
    EXPECT_GE(plan.stage_of_layer[i], plan.stage_of_layer[i - 1]);
    EXPECT_LE(plan.stage_of_layer[i], plan.stage_of_layer[i - 1] + 1);
  }
  EXPECT_EQ(plan.stage_of_layer.front(), 0);
  EXPECT_EQ(plan.stage_of_layer.back(), 2);
  // Every stage is non-empty.
  for (Index s = 0; s < 3; ++s) {
    const auto [first, last] = plan.stage_range(s);
    EXPECT_LT(first, last);
  }
}

TEST(StagePlan, OneStagePerLayerAndSingleStage) {
  Model m = deep_mlp(72);
  const StagePlan one = balance_stages(m, 1);
  for (Index s : one.stage_of_layer) EXPECT_EQ(s, 0);
  const StagePlan full = balance_stages(m, m.num_layers());
  for (Index i = 0; i < m.num_layers(); ++i) {
    EXPECT_EQ(full.stage_of_layer[static_cast<std::size_t>(i)], i);
  }
  EXPECT_THROW(balance_stages(m, 0), Error);
  EXPECT_THROW(balance_stages(m, m.num_layers() + 1), Error);
}

TEST(ModelParallel, StagedForwardIsExact) {
  Model m = deep_mlp(73);
  Pcg32 rng(74);
  Tensor x = Tensor::randn({8, 16}, rng);
  const Tensor whole = m.forward(x);
  for (Index k : {1, 2, 3, 4}) {
    const StagePlan plan = balance_stages(m, k);
    std::vector<double> boundary;
    const Tensor staged = forward_staged(m, x, plan, &boundary);
    EXPECT_EQ(max_abs_diff(whole, staged), 0.0f) << k << " stages";
    EXPECT_EQ(static_cast<Index>(boundary.size()), k - 1);
    for (double b : boundary) EXPECT_GT(b, 0.0);
  }
}

TEST(ModelParallel, PipelineBubbleShrinksWithMicrobatches) {
  Model m = deep_mlp(75);
  const StagePlan plan = balance_stages(m, 3);
  const auto node = hpcsim::summit_node();
  const auto fabric = hpcsim::fat_tree_fabric();
  const PipelineEstimate e4 = estimate_pipeline(m, plan, 4, 8, node, fabric);
  const PipelineEstimate e32 = estimate_pipeline(m, plan, 32, 8, node, fabric);
  EXPECT_GT(e4.bubble_fraction, e32.bubble_fraction);
  EXPECT_NEAR(e32.bubble_fraction, 2.0 / 34.0, 1e-9);
  EXPECT_GT(e32.speedup, e4.speedup);
  EXPECT_GT(e32.stage_seconds.size(), 0u);
}

TEST(ModelParallel, PipelineEstimateValidation) {
  Model m = deep_mlp(76);
  const StagePlan plan = balance_stages(m, 2);
  EXPECT_THROW(estimate_pipeline(m, plan, 0, 8, hpcsim::summit_node(),
                                 hpcsim::fat_tree_fabric()),
               Error);
}

// ---- workload extraction ---------------------------------------------------------

TEST(Workload, ExtractedFromModel) {
  Model m = deep_mlp(81);
  const hpcsim::TrainingWorkload w = workload_from_model(m, "deep-mlp");
  EXPECT_EQ(w.name, "deep-mlp");
  EXPECT_DOUBLE_EQ(w.flops_per_sample, m.flops_per_sample());
  EXPECT_DOUBLE_EQ(w.parameters, static_cast<double>(m.num_params()));
  EXPECT_DOUBLE_EQ(w.bytes_per_sample, 16.0 * 4.0);
  // Activations: 64 + 64 + 64 + 64 + 32 + 32 + 4 floats.
  EXPECT_DOUBLE_EQ(w.activation_bytes_per_sample,
                   (64 + 64 + 64 + 64 + 32 + 32 + 4) * 4.0);
}

TEST(Workload, FeedsPerfModel) {
  Model m = deep_mlp(82);
  const auto w = workload_from_model(m, "deep-mlp");
  const auto pts =
      hpcsim::strong_scaling(hpcsim::summit_node(), hpcsim::fat_tree_fabric(),
                             w, 1024, {1, 16, 256});
  EXPECT_EQ(pts.size(), 3u);
  EXPECT_LT(pts.back().efficiency, pts.front().efficiency);
}

}  // namespace
}  // namespace candle::parallel

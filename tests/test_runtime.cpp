// Unit tests for the runtime substrate: RNG determinism and statistics,
// thread-pool semantics, parallel_for correctness under nesting/contention.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "runtime/error.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/timer.hpp"

namespace candle {
namespace {

TEST(Pcg32, DeterministicForSameSeed) {
  Pcg32 a(42, 7), b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
}

TEST(Pcg32, DifferentStreamsDiffer) {
  Pcg32 a(42, 1), b(42, 2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += a.next_u32() == b.next_u32();
  EXPECT_LT(same, 5);
}

TEST(Pcg32, NextBelowRespectsBound) {
  Pcg32 rng(1);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Pcg32, DoublesInUnitInterval) {
  Pcg32 rng(3);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Pcg32, NormalHasUnitVariance) {
  Pcg32 rng(9);
  const int n = 50000;
  double sum = 0, sumsq = 0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Pcg32, SplitProducesIndependentStreams) {
  Pcg32 parent(5);
  Pcg32 c1 = parent.split(1);
  Pcg32 c2 = parent.split(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) same += c1.next_u32() == c2.next_u32();
  EXPECT_LT(same, 5);
  // Splitting is deterministic.
  Pcg32 parent2(5);
  Pcg32 c1b = parent2.split(1);
  Pcg32 c1r = Pcg32(5).split(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1b.next_u32(), c1r.next_u32());
}

TEST(Pcg32, WorksWithStdShuffle) {
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  Pcg32 rng(11);
  std::shuffle(v.begin(), v.end(), rng);
  std::set<int> seen(v.begin(), v.end());
  EXPECT_EQ(seen.size(), 100u);  // still a permutation
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  const std::int64_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(0, n, 64, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::int64_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, 1, [&](std::int64_t, std::int64_t) { called = true; });
  parallel_for(7, 3, 1, [&](std::int64_t, std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelFor, NestedCallsRunSerially) {
  std::atomic<std::int64_t> total{0};
  parallel_for(0, 64, 1, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) {
      // Inner loop must still cover its range even though it cannot
      // re-enter the pool.
      std::int64_t inner = 0;
      parallel_for(0, 100, 10, [&](std::int64_t a, std::int64_t b) {
        inner += b - a;
      });
      total += inner;
    }
  });
  EXPECT_EQ(total.load(), 64 * 100);
}

TEST(ParallelFor, ConcurrentExternalCallersAllComplete) {
  // Several non-pool threads race to use the pool; losers degrade to serial.
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<std::int64_t> sums(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::atomic<std::int64_t> sum{0};
      parallel_for(0, 10000, 100, [&](std::int64_t lo, std::int64_t hi) {
        std::int64_t s = 0;
        for (std::int64_t i = lo; i < hi; ++i) s += i;
        sum += s;
      });
      sums[t] = sum.load();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(sums[t], 10000LL * 9999 / 2) << "thread " << t;
  }
}

TEST(ParallelFor, PropagatesExceptions) {
  // `hi > 500` triggers both when the range is chunked (some chunk crosses
  // 500) and when the loop degrades to a single serial call over the whole
  // range (single-core machines).
  EXPECT_THROW(
      parallel_for(0, 1000, 10,
                   [&](std::int64_t, std::int64_t hi) {
                     if (hi > 500) throw Error("boom");
                   }),
      Error);
  // Pool must remain usable afterwards.
  std::atomic<int> count{0};
  parallel_for(0, 100, 10, [&](std::int64_t lo, std::int64_t hi) {
    count += static_cast<int>(hi - lo);
  });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, RunOnAllExecutesEverywhere) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  std::set<unsigned> indices;
  std::mutex mu;
  pool.run_on_all([&](unsigned idx) {
    count.fetch_add(1);
    std::lock_guard<std::mutex> lock(mu);
    indices.insert(idx);
  });
  EXPECT_EQ(count.load(), 4);  // 3 workers + caller
  EXPECT_EQ(indices, (std::set<unsigned>{0, 1, 2, 3}));
}

TEST(ThreadPool, ZeroWorkersRunsOnCaller) {
  ThreadPool pool(0);
  // A pool explicitly constructed with 0 workers still runs the body once.
  int runs = 0;
  pool.run_on_all([&](unsigned idx) {
    EXPECT_EQ(idx, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
}

TEST(ThreadPool, SurvivesManyGenerations) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int g = 0; g < 200; ++g) {
    pool.run_on_all([&](unsigned) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 200 * 3);
}

TEST(CheckMacro, ThrowsWithMessage) {
  try {
    CANDLE_CHECK(1 == 2, "math is broken");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("math is broken"), std::string::npos);
  }
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(sw.seconds(), 0.0);
  const double before = sw.seconds();
  sw.reset();
  EXPECT_LE(sw.seconds(), before + 1.0);
}

}  // namespace
}  // namespace candle

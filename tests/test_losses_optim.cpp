// Tests for losses (value + gradient against finite differences) and
// optimizers (convergence on a convex quadratic, state handling, precision
// rounding policies).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "runtime/rng.hpp"

namespace candle {
namespace {

// Central-difference check of loss.grad against loss.value.
double loss_grad_max_error(const Loss& loss, Tensor pred,
                           const Tensor& target) {
  const Tensor g = loss.grad(pred, target);
  const float eps = 1e-3f;
  double max_err = 0.0;
  for (Index i = 0; i < pred.numel(); ++i) {
    const float orig = pred[i];
    pred[i] = orig + eps;
    const double fp = loss.value(pred, target);
    pred[i] = orig - eps;
    const double fm = loss.value(pred, target);
    pred[i] = orig;
    const double num = (fp - fm) / (2.0 * static_cast<double>(eps));
    max_err = std::max(max_err, std::abs(num - static_cast<double>(g[i])));
  }
  return max_err;
}

TEST(Mse, KnownValue) {
  MeanSquaredError mse;
  Tensor pred({2, 2}, {1, 2, 3, 4});
  Tensor target({2, 2}, {1, 2, 3, 6});
  EXPECT_FLOAT_EQ(mse.value(pred, target), 4.0f / 4.0f);
}

TEST(Mse, GradMatchesFiniteDifference) {
  Pcg32 rng(1);
  MeanSquaredError mse;
  Tensor pred = Tensor::randn({4, 3}, rng);
  Tensor target = Tensor::randn({4, 3}, rng);
  EXPECT_LT(loss_grad_max_error(mse, pred, target), 1e-3);
}

TEST(Mse, ZeroAtPerfectPrediction) {
  MeanSquaredError mse;
  Tensor pred({3, 1}, {1, 2, 3});
  EXPECT_EQ(mse.value(pred, pred), 0.0f);
  Tensor g = mse.grad(pred, pred);
  EXPECT_EQ(g.l2_norm(), 0.0f);
}

TEST(SoftmaxXent, SoftmaxRowsSumToOne) {
  Pcg32 rng(2);
  Tensor logits = Tensor::randn({5, 7}, rng, 0.0f, 3.0f);
  Tensor p = SoftmaxCrossEntropy::softmax(logits);
  for (Index i = 0; i < 5; ++i) {
    double row = 0;
    for (Index j = 0; j < 7; ++j) {
      row += p.at(i, j);
      EXPECT_GE(p.at(i, j), 0.0f);
    }
    EXPECT_NEAR(row, 1.0, 1e-5);
  }
}

TEST(SoftmaxXent, StableForHugeLogits) {
  Tensor logits({1, 3}, {1000.0f, 999.0f, -1000.0f});
  Tensor target({1}, {0.0f});
  SoftmaxCrossEntropy xent;
  const float v = xent.value(logits, target);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_LT(v, 1.0f);  // the true class dominates
  Tensor g = xent.grad(logits, target);
  for (Index i = 0; i < 3; ++i) EXPECT_TRUE(std::isfinite(g[i]));
}

TEST(SoftmaxXent, UniformLogitsGiveLogC) {
  Tensor logits = Tensor::zeros({4, 10});
  Tensor target({4}, {0, 3, 5, 9});
  SoftmaxCrossEntropy xent;
  EXPECT_NEAR(xent.value(logits, target), std::log(10.0f), 1e-5);
}

TEST(SoftmaxXent, GradMatchesFiniteDifference) {
  Pcg32 rng(3);
  Tensor logits = Tensor::randn({6, 4}, rng);
  Tensor target({6}, {0, 1, 2, 3, 1, 2});
  SoftmaxCrossEntropy xent;
  EXPECT_LT(loss_grad_max_error(xent, logits, target), 1e-3);
}

TEST(SoftmaxXent, RejectsBadClassIndex) {
  Tensor logits = Tensor::zeros({2, 3});
  Tensor target({2}, {0.0f, 5.0f});
  SoftmaxCrossEntropy xent;
  EXPECT_THROW(xent.value(logits, target), Error);
}

TEST(Bce, GradMatchesFiniteDifference) {
  Pcg32 rng(4);
  Tensor logits = Tensor::randn({8, 1}, rng);
  Tensor target({8, 1}, {1, 0, 1, 1, 0, 0, 1, 0});
  BinaryCrossEntropy bce;
  EXPECT_LT(loss_grad_max_error(bce, logits, target), 1e-3);
}

TEST(Bce, StableForExtremeLogits) {
  Tensor logits({2, 1}, {100.0f, -100.0f});
  Tensor target({2, 1}, {1.0f, 0.0f});
  BinaryCrossEntropy bce;
  const float v = bce.value(logits, target);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_LT(v, 1e-3f);
}

TEST(Bce, ValueAtZeroLogitsIsLog2) {
  Tensor logits = Tensor::zeros({4, 1});
  Tensor target({4, 1}, {1, 0, 1, 0});
  BinaryCrossEntropy bce;
  EXPECT_NEAR(bce.value(logits, target), std::log(2.0f), 1e-6);
}

// ---- optimizers ---------------------------------------------------------------

// Minimize f(w) = 0.5 * ||w - w*||^2 whose gradient is (w - w*).
void run_quadratic(Optimizer& opt, int steps, Tensor& w, const Tensor& wstar) {
  Tensor g(w.shape());
  std::vector<Tensor*> ps{&w}, gs{&g};
  for (int s = 0; s < steps; ++s) {
    g.copy_from(w);
    g.axpy(-1.0f, wstar);
    opt.step(ps, gs);
  }
}

class OptimizerConvergence
    : public ::testing::TestWithParam<std::string> {};

TEST_P(OptimizerConvergence, ReachesQuadraticMinimum) {
  Pcg32 rng(5);
  Tensor wstar = Tensor::randn({16}, rng);
  Tensor w = Tensor::randn({16}, rng);
  // RMSProp limit-cycles with amplitude ~lr near the optimum, so it gets a
  // smaller step than the others.
  const float lr = GetParam() == "adam"      ? 0.05f
                   : GetParam() == "rmsprop" ? 0.01f
                                             : 0.1f;
  auto opt = make_optimizer(GetParam(), lr);
  run_quadratic(*opt, 800, w, wstar);
  w.axpy(-1.0f, wstar);
  EXPECT_LT(w.l2_norm(), 0.05f) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllOptimizers, OptimizerConvergence,
                         ::testing::Values("sgd", "momentum", "rmsprop",
                                           "adam"),
                         [](const auto& pinfo) { return pinfo.param; });

TEST(Optimizer, UnknownNameThrows) {
  EXPECT_THROW(make_optimizer("lbfgs", 0.1f), Error);
}

TEST(Optimizer, SgdSingleStepIsExact) {
  Tensor w({2}, {1.0f, 2.0f});
  Tensor g({2}, {0.5f, -1.0f});
  Sgd sgd(0.1f);
  std::vector<Tensor*> ps{&w}, gs{&g};
  sgd.step(ps, gs);
  EXPECT_FLOAT_EQ(w[0], 0.95f);
  EXPECT_FLOAT_EQ(w[1], 2.1f);
}

TEST(Optimizer, MismatchedListsThrow) {
  Tensor w({2});
  Sgd sgd(0.1f);
  std::vector<Tensor*> ps{&w}, gs{};
  EXPECT_THROW(sgd.step(ps, gs), Error);
  Tensor g({3});
  gs = {&g};
  EXPECT_THROW(sgd.step(ps, gs), Error);
}

TEST(Optimizer, MomentumAcceleratesAlongConsistentGradient) {
  // With a constant gradient, momentum's effective step grows toward
  // lr/(1-mu); plain SGD stays at lr.
  Tensor w_sgd({1}, {0.0f}), w_mom({1}, {0.0f});
  Tensor g({1}, {1.0f});
  Sgd sgd(0.01f);
  Momentum mom(0.01f, 0.9f);
  std::vector<Tensor*> gs{&g};
  std::vector<Tensor*> p1{&w_sgd}, p2{&w_mom};
  for (int s = 0; s < 50; ++s) {
    sgd.step(p1, gs);
    mom.step(p2, gs);
  }
  EXPECT_LT(w_mom[0], w_sgd[0] * 3.0f);  // sanity upper bound
  EXPECT_LT(w_mom[0], -w_sgd[0]);        // momentum moved much farther (neg)
  EXPECT_LT(w_mom[0], 5.0f * w_sgd[0]);
}

TEST(Optimizer, AdamInvariantToGradientScale) {
  // Adam's update magnitude is ~lr regardless of gradient scale.
  Tensor w1({1}, {0.0f}), w2({1}, {0.0f});
  Tensor g1({1}, {1e-3f}), g2({1}, {1e3f});
  Adam a1(0.01f), a2(0.01f);
  std::vector<Tensor*> p1{&w1}, p2{&w2}, gg1{&g1}, gg2{&g2};
  a1.step(p1, gg1);
  a2.step(p2, gg2);
  EXPECT_NEAR(w1[0], w2[0], 1e-5f);
  EXPECT_NEAR(w1[0], -0.01f, 1e-4f);
}

TEST(Optimizer, UpdatePrecisionRoundsWeights) {
  Tensor w({1}, {1.0f});
  Tensor g({1}, {-1e-5f});  // too small to survive bf16 weight rounding
  Sgd sgd(1.0f);
  sgd.set_update_precision({Precision::BF16, false, 0});
  std::vector<Tensor*> ps{&w}, gs{&g};
  sgd.step(ps, gs);
  EXPECT_EQ(w[0], 1.0f);  // update vanished: classic fp16/bf16 stagnation
  // Stochastic rounding rescues the expectation.
  Tensor w2({1}, {1.0f});
  Sgd sgd2(1.0f);
  sgd2.set_update_precision({Precision::BF16, true, 42});
  std::vector<Tensor*> ps2{&w2};
  double sum = 0.0;
  const int reps = 2000;
  for (int r = 0; r < reps; ++r) {
    w2[0] = 1.0f;
    sgd2.step(ps2, gs);
    sum += w2[0];
  }
  // The SGD update is w -= lr*(-1e-5) = +1e-5; unbiased stochastic rounding
  // preserves that in expectation, which RNE rounding cannot.
  EXPECT_GT(sum / reps, 1.0 + 2e-6);
  EXPECT_NEAR(sum / reps, 1.0 + 1e-5, 5e-6);
}

TEST(Optimizer, LearningRateIsMutable) {
  Sgd sgd(0.1f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.1f);
  sgd.set_learning_rate(0.01f);
  EXPECT_FLOAT_EQ(sgd.learning_rate(), 0.01f);
}

}  // namespace
}  // namespace candle
